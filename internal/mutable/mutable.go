// Package mutable maintains a weight-ranked graph under online edge
// insertions and deletions while serving queries from immutable
// copy-on-write snapshots, closing the gap between the paper's static-graph
// premise and a serving system whose datasets mutate continuously.
//
// The design splits the two concerns the static backends fuse:
//
//   - Readers never block and never lock. A query pins the current snapshot
//     with one atomic pointer load; the snapshot — a fully built
//     graph.Graph plus the engine pool bound to it — is immutable from the
//     moment it is published, so the query runs exactly as it would on a
//     static in-memory store. The pinned pointer is the reference that
//     keeps the snapshot alive (the garbage collector plays the role the
//     semi-external prefix cache's explicit refcount plays for its mmap),
//     so a snapshot is reclaimed only after the last query using it
//     returns.
//
//   - Writers serialize among themselves and publish whole snapshots.
//     Applying a batch costs one incremental graph delta
//     (graph.ApplyEdgeDelta): vertex weights never change under edge
//     mutations, so the weight ranking, original-ID mapping, and labels
//     are shared across every snapshot, the adjacency prefix below the
//     smallest touched vertex is copied verbatim, and only the affected
//     suffix of the CSR and its up-degree/up-prefix vectors is recomputed
//     — no sorting, no deduplication, no full rebuild.
//
// Stores opened from a semi-external edge file are durable: every applied
// batch is appended to a write-ahead update log (semiext.UpdateLog) and
// fsynced before the in-memory snapshot advances, the log is replayed when
// the store reopens, and a clean Close compacts the accumulated updates
// back into the edge file atomically and deletes the log.
package mutable

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

// ErrInvalidBatch marks ApplyUpdates failures caused by the batch itself —
// unknown vertices, self loops — as opposed to store-side failures (log
// I/O, a closed store). The serving layer maps the former to client
// errors and everything else to server errors.
var ErrInvalidBatch = errors.New("invalid update batch")

// invalidf builds an ErrInvalidBatch-wrapped batch-validation error.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("mutable: %w: %s", ErrInvalidBatch, fmt.Sprintf(format, args...))
}

// Update is one edge mutation. Endpoints are original vertex IDs — the IDs
// the graph was built with, exactly as in graph.Edit — so update feeds
// written against the input data keep working regardless of weight rank.
// For stores opened from an edge file, original IDs and weight ranks
// coincide (the edge-file layout stores ranks).
type Update struct {
	// Delete removes the edge; the zero value inserts it.
	Delete bool
	// U, V are the edge's endpoints (original vertex IDs, unordered).
	U, V int32
}

// ApplyStats reports what one ApplyUpdates batch did.
type ApplyStats struct {
	// Inserted and Deleted count the edges that actually changed the graph.
	Inserted, Deleted int
	// Skipped counts no-ops: inserting an edge already present, deleting
	// one already absent, or an op superseded by a later op on the same
	// edge within the batch (the last op wins).
	Skipped int
	// Epoch is the snapshot epoch after the batch; queries arriving from
	// now on see the updated graph.
	Epoch uint64
}

// UpdateEvent describes one published snapshot transition to an OnApply
// observer: the epoch of the snapshot just published and the delta's cut
// — the smallest weight rank whose adjacency row changed (see
// graph.ApplyEdgeDeltaCut). Every prefix subgraph below the cut is
// identical across the transition, which is what incremental index
// maintenance keys on.
type UpdateEvent struct {
	// Epoch is the snapshot epoch published by the batch.
	Epoch uint64
	// Cut is the smallest rank with a changed adjacency row.
	Cut int
}

// OnApply registers fn to run after every effectively applied batch
// (no-op batches fire nothing), synchronously under the writer lock and
// after the new snapshot is published: when fn runs, Snapshot() already
// returns the epoch it was handed, and no further batch can land until
// fn returns. Replay during Open happens before any observer can
// register, so a reopened store fires no replay events. At most one
// observer is supported; registering nil removes it.
func (s *Store) OnApply(fn func(UpdateEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onApply = fn
}

// snapshot is one immutable published state: a graph and the engine pool
// bound to it. Neither is modified after publication.
type snapshot struct {
	g     *graph.Graph
	pool  *core.Pool
	epoch uint64
}

// Store is a mutable graph served through copy-on-write snapshots. Reads
// (TopK, Stream, Graph) are lock-free and never pause during updates;
// writes (ApplyUpdates, Close) serialize among themselves. It implements
// the store.Store interface with backend name "mutable".
type Store struct {
	// mu serializes writers: batch application, compaction, close. Readers
	// never take it.
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]

	// rankOf maps original vertex IDs to ranks; nil when the mapping is the
	// identity (edge-file stores, unlabeled FromUpAdjacency graphs).
	rankOf map[int32]int32

	// log is the write-ahead update log; nil for purely in-memory stores,
	// which mutate without durability. edgePath is the compaction target and
	// edgeFormat the layout it was opened with — compaction writes the same
	// format back, so a compressed (v2) store stays compressed across
	// update/close/reopen cycles.
	log        *semiext.UpdateLog
	edgePath   string
	edgeFormat int
	// dirty marks snapshot state that is ahead of the edge file, so Close
	// knows whether compaction has anything to write.
	dirty bool

	// onApply, when set, observes every effective batch; see OnApply.
	onApply func(UpdateEvent)

	applied atomic.Int64
	closed  atomic.Bool
}

// NewStore serves g mutably with no durability: updates mutate the served
// snapshots but are not logged anywhere. Use Open for a durable store
// backed by an edge file.
func NewStore(g *graph.Graph) (*Store, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("mutable: nil or empty graph")
	}
	s := &Store{}
	s.snap.Store(&snapshot{g: g, pool: core.NewPool(g)})
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if g.OrigID(u) != u {
			s.rankOf = make(map[int32]int32, g.NumVertices())
			for r := int32(0); int(r) < g.NumVertices(); r++ {
				s.rankOf[g.OrigID(r)] = r
			}
			break
		}
	}
	return s, nil
}

// Open loads the semi-external edge file at path fully into memory, replays
// its write-ahead update log (path + ".log") if one exists, and returns the
// durable mutable store over the result. Unlike the semi-external backend
// the whole graph is resident — mutability needs the full adjacency — so
// the edge file here is the persistence format, not a working set bound.
func Open(path string) (*Store, error) {
	r, err := semiext.OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	n := r.NumVertices()
	weights := make([]float64, n)
	upDeg := make([]int32, n)
	for u := 0; u < n; u++ {
		weights[u] = r.Weight(int32(u))
		upDeg[u] = r.UpDegree(int32(u))
	}
	adj := make([]int32, 0, r.NumEdges())
	for {
		if adj, err = r.ReadVertexAdj(adj); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
	}
	g, err := graph.FromUpAdjacency(weights, upDeg, adj, nil)
	if err != nil {
		return nil, fmt.Errorf("mutable: %s: %w", path, err)
	}

	s := &Store{edgePath: path, edgeFormat: r.Format()}
	s.snap.Store(&snapshot{g: g, pool: core.NewPool(g)})
	log, batches, err := semiext.OpenUpdateLog(semiext.UpdateLogPath(path))
	if err != nil {
		return nil, err
	}
	s.log = log
	for _, b := range batches {
		// Replay re-applies logged batches through the same no-op filter as
		// live traffic: after a crash between compaction and log removal,
		// every logged op is already in the edge file and filters to
		// nothing, which is exactly the idempotence replay needs.
		if _, err := s.applyRanked(b, false); err != nil {
			log.Close()
			return nil, fmt.Errorf("mutable: replaying %s: %w", log.Path(), err)
		}
	}
	// dirty is set by applyRanked only for batches that changed the graph:
	// a log that replays to pure no-ops (the post-compaction-crash case)
	// leaves the store clean, so Close drops it without rewriting the
	// edge file.
	return s, nil
}

// Backend returns "mutable".
func (s *Store) Backend() string { return "mutable" }

// NumVertices returns the vertex count of the current snapshot.
func (s *Store) NumVertices() int { return s.snap.Load().g.NumVertices() }

// NumEdges returns the edge count of the current snapshot.
func (s *Store) NumEdges() int64 { return s.snap.Load().g.NumEdges() }

// Graph returns the current snapshot's graph. Weights, original IDs, and
// labels are shared across all snapshots, so identity lookups on the
// returned graph agree with any concurrently taken snapshot.
func (s *Store) Graph() *graph.Graph { return s.snap.Load().g }

// Snapshot returns the current graph together with its epoch in one
// coherent read; callers caching per-graph derived state (a truss index, a
// prebuilt index) key it by the epoch.
func (s *Store) Snapshot() (*graph.Graph, uint64) {
	sn := s.snap.Load()
	return sn.g, sn.epoch
}

// SnapshotEpoch returns the current snapshot epoch: 0 at open, +1 per
// effective ApplyUpdates batch (including batches replayed from the log).
func (s *Store) SnapshotEpoch() uint64 { return s.snap.Load().epoch }

// UpdatesApplied returns the total number of effective edge mutations
// (inserts plus deletes, no-ops excluded) applied since the store opened.
func (s *Store) UpdatesApplied() int64 { return s.applied.Load() }

// TopK answers a query against the snapshot current at call time: the one
// atomic pointer load is the snapshot pin — updates applied while the
// query runs publish new snapshots without disturbing it.
func (s *Store) TopK(ctx context.Context, k int, gamma int32, opts core.Options) (*core.Result, error) {
	if s.closed.Load() {
		return nil, errors.New("mutable: store is closed")
	}
	return s.snap.Load().pool.TopK(ctx, k, gamma, opts)
}

// Stream answers a progressive query against the snapshot current at call
// time, with the same pinning discipline as TopK.
func (s *Store) Stream(ctx context.Context, gamma int32, opts core.Options, yield func(*core.Community) bool) (core.Stats, error) {
	if s.closed.Load() {
		return core.Stats{}, errors.New("mutable: store is closed")
	}
	return s.snap.Load().pool.Stream(ctx, gamma, opts, yield)
}

// ApplyUpdates applies one batch of edge mutations and publishes the
// resulting snapshot. The batch is normalized first — original IDs resolved
// to ranks, endpoints ordered, duplicates within the batch resolved last op
// wins — then filtered against the current graph (no-op inserts and deletes
// are skipped, not errors), durably logged when the store has a write-ahead
// log, and finally applied as one incremental graph delta. Queries running
// concurrently keep their pinned snapshots; queries arriving after
// ApplyUpdates returns see the new one. Unknown vertex IDs and self loops
// fail the whole batch before anything is logged or applied.
func (s *Store) ApplyUpdates(ctx context.Context, batch []Update) (ApplyStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ApplyStats{}, errors.New("mutable: store is closed")
	}
	if err := ctx.Err(); err != nil {
		return ApplyStats{}, err
	}
	ranked, collapsed, err := s.rank(batch)
	if err != nil {
		return ApplyStats{}, err
	}
	st, err := s.applyRanked(ranked, true)
	if err != nil {
		return ApplyStats{}, err
	}
	st.Skipped += collapsed
	return st, nil
}

// rank resolves a raw batch into normalized rank pairs, resolving original
// IDs and rejecting unknown vertices and self loops. Duplicate edges within
// the batch collapse to the last op; collapsed reports how many ops were
// superseded that way.
func (s *Store) rank(batch []Update) (out []semiext.LogUpdate, collapsed int, err error) {
	g := s.snap.Load().g
	resolve := func(id int32) (int32, error) {
		if s.rankOf != nil {
			r, ok := s.rankOf[id]
			if !ok {
				return 0, invalidf("unknown vertex %d", id)
			}
			return r, nil
		}
		if id < 0 || int(id) >= g.NumVertices() {
			return 0, invalidf("unknown vertex %d", id)
		}
		return id, nil
	}
	out = make([]semiext.LogUpdate, 0, len(batch))
	last := make(map[[2]int32]int, len(batch)) // edge -> index in out
	for _, up := range batch {
		u, err := resolve(up.U)
		if err != nil {
			return nil, 0, err
		}
		v, err := resolve(up.V)
		if err != nil {
			return nil, 0, err
		}
		if u == v {
			return nil, 0, invalidf("self loop (%d,%d) rejected", up.U, up.V)
		}
		if u > v {
			u, v = v, u
		}
		lu := semiext.LogUpdate{Delete: up.Delete, U: u, V: v}
		if i, ok := last[[2]int32{u, v}]; ok {
			out[i] = lu // last op on an edge wins
			collapsed++
			continue
		}
		last[[2]int32{u, v}] = len(out)
		out = append(out, lu)
	}
	return out, collapsed, nil
}

// applyRanked filters a normalized batch against the current snapshot,
// optionally logs it, applies the delta, and publishes the next snapshot.
// Callers hold s.mu.
func (s *Store) applyRanked(ranked []semiext.LogUpdate, logIt bool) (ApplyStats, error) {
	sn := s.snap.Load()
	var st ApplyStats
	var ins, del [][2]int32
	eff := ranked[:0:0]
	for _, u := range ranked {
		e := [2]int32{u.U, u.V}
		if u.Delete != sn.g.HasEdge(u.U, u.V) {
			st.Skipped++ // no-op: insert of present edge / delete of absent
			continue
		}
		if u.Delete {
			del = append(del, e)
			st.Deleted++
		} else {
			ins = append(ins, e)
			st.Inserted++
		}
		eff = append(eff, u)
	}
	st.Epoch = sn.epoch
	if len(eff) == 0 {
		return st, nil
	}
	if logIt && s.log != nil {
		// Durability before visibility: a batch is acknowledged only after
		// it is fsynced, and it is applied in memory only after it is
		// logged, so the replayed log is never behind a served snapshot.
		if err := s.log.Append(eff); err != nil {
			return ApplyStats{}, err
		}
	}
	ng, cut, err := graph.ApplyEdgeDeltaCut(sn.g, ins, del)
	if err != nil {
		return ApplyStats{}, err
	}
	next := &snapshot{g: ng, pool: core.NewPool(ng), epoch: sn.epoch + 1}
	s.snap.Store(next)
	s.dirty = true
	st.Epoch = next.epoch
	s.applied.Add(int64(st.Inserted + st.Deleted))
	if s.onApply != nil {
		s.onApply(UpdateEvent{Epoch: next.epoch, Cut: cut})
	}
	return st, nil
}

// Abandon releases the store without compacting: the write-ahead log
// handle is closed — releasing its exclusive lock — with every logged
// batch left in place to replay on the next Open. It is the programmatic
// equivalent of the process dying (crash tests use it; an operator gets
// the same effect from kill -9), useful when a shutdown cannot afford the
// edge-file rewrite.
func (s *Store) Abandon() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Swap(true) || s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Close shuts the store down. A durable store first compacts: the current
// snapshot is rewritten into the edge file atomically (temp file + rename,
// via the shared atomicio path inside WriteEdgeFileFormat, preserving the
// format the file was opened with) and only then is the
// update log removed — a crash between the two replays a log whose every
// op is already compacted, which filters to nothing. Queries in flight on
// pinned snapshots complete normally; new queries fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Swap(true) {
		return nil
	}
	if s.log == nil {
		return nil
	}
	if !s.dirty {
		// Nothing newer than the edge file: the log is empty or replayed to
		// pure no-ops (the post-compaction-crash case); drop it.
		return s.log.Remove()
	}
	if err := semiext.WriteEdgeFileFormat(s.edgePath, s.snap.Load().g, s.edgeFormat); err != nil {
		// Compaction failed; keep the log so no update is lost. The store
		// still closes.
		s.log.Close()
		return err
	}
	return s.log.Remove()
}
