package influcomm

import (
	"context"
	"encoding/json"
	"testing"

	"influcomm/internal/cluster"
)

// TestRunQueryPlanMatchesTopK pins the embedded DSL to the classic facade:
// a fixed-shape statement's communities serialize identically to the
// rendered TopK answer of the same shape.
func TestRunQueryPlanMatchesTopK(t *testing.T) {
	g := figure1(t)
	res, err := RunQuery(context.Background(), g, "topk(k=2, gamma=3); topk(k=2, gamma=3, semantics=noncontainment)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d statements, want 2", len(res))
	}

	classic, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	var want []ClusterCommunity
	for _, c := range classic.Communities {
		want = append(want, cluster.Render(g, c.Influence(), c.Keynode(), c.Vertices()))
	}
	got, err := json.Marshal(res[0].Nodes[0].Communities)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantJSON) {
		t.Errorf("core node:\ndsl     %s\nclassic %s", got, wantJSON)
	}

	nc, err := TopKNonContainment(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[1].Nodes[0].Communities) != len(nc.Communities) {
		t.Errorf("noncontainment node: %d communities, facade %d",
			len(res[1].Nodes[0].Communities), len(nc.Communities))
	}
}

// TestRunQueryCSESharesNodes shows within-batch sharing: two statements
// expanding to the same plan node compute once, the second is marked
// Shared and carries the identical answer; filters stay per statement.
func TestRunQueryCSESharesNodes(t *testing.T) {
	g := figure1(t)
	res, err := RunQuery(context.Background(), g,
		"topk(k=3, gamma=2); topk(k=3, gamma=2) | limit(1)")
	if err != nil {
		t.Fatal(err)
	}
	first, second := res[0].Nodes[0], res[1].Nodes[0]
	if first.Shared || !second.Shared {
		t.Errorf("shared flags = %v, %v; want false, true", first.Shared, second.Shared)
	}
	if len(second.Communities) > 1 {
		t.Errorf("limit(1) kept %d communities", len(second.Communities))
	}
	if len(first.Communities) == 0 {
		t.Fatal("no communities at all")
	}
	if first.Communities[0].Influence != second.Communities[0].Influence {
		t.Errorf("shared node diverged: %v vs %v",
			first.Communities[0].Influence, second.Communities[0].Influence)
	}
}

// TestRunQueryPlanNear pins the seed-scoped path to TopKNearQuery: same
// seeds, same shape, same communities.
func TestRunQueryPlanNear(t *testing.T) {
	g := figure1(t)
	res, err := RunQuery(context.Background(), g, "near(seeds=[0], k=2, gamma=2)")
	if err != nil {
		t.Fatal(err)
	}
	rw, classic, err := TopKNearQuery(g, []int32{0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want []ClusterCommunity
	for _, c := range classic.Communities {
		want = append(want, cluster.Render(rw, c.Influence(), c.Keynode(), c.Vertices()))
	}
	got, err := json.Marshal(res[0].Nodes[0].Communities)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantJSON) {
		t.Errorf("near node:\ndsl    %s\nfacade %s", got, wantJSON)
	}
}

// TestParseQueryFacade exercises the parse-only entry point: canonical
// printing is a fixpoint, and syntax errors surface.
func TestParseQueryFacade(t *testing.T) {
	q, err := ParseQuery("topk( k=3 , gamma = 2..4 )|influence(>= 12)")
	if err != nil {
		t.Fatal(err)
	}
	canon := q.String()
	again, err := ParseQuery(canon)
	if err != nil {
		t.Fatalf("reparsing canonical %q: %v", canon, err)
	}
	if again.String() != canon {
		t.Errorf("canonical print is not a fixpoint: %q -> %q", canon, again.String())
	}
	if _, err := ParseQuery("topk(k=nope)"); err == nil {
		t.Error("want parse error for k=nope")
	}
}
