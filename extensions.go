package influcomm

import (
	"context"
	"fmt"
	"os"

	"influcomm/internal/atomicio"
	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/index"
)

// Index is a prebuilt IndexAll structure [26]: it materializes the
// community decomposition of every γ so any (k, γ) query via Index.TopK
// costs only its output size. The trade-offs the paper's introduction
// describes apply: building costs ~γmax full-graph passes, the structure
// serves exactly one graph and weight vector, and any edit invalidates it.
// Prefer TopK/Stream unless the same weighted graph is queried many times —
// then prebuild once (icindex), persist with SaveIndex, and serve with
// LoadIndex (icserver -index). An index needs whole-graph access, so it
// attaches only to in-memory Stores, never to semi-external ones.
type Index = index.Index

// BuildIndex constructs the IndexAll structure for g, fanning the
// independent per-γ decompositions out over all available cores.
func BuildIndex(g *Graph) (*Index, error) {
	return index.Build(g)
}

// BuildIndexContext is BuildIndex with cancellation and an explicit worker
// count: workers <= 0 uses GOMAXPROCS, workers == 1 builds sequentially.
// The index content is identical regardless of worker count.
func BuildIndexContext(ctx context.Context, g *Graph, workers int) (*Index, error) {
	return index.BuildContext(ctx, g, workers)
}

// SaveIndex writes ix to the file at path in the versioned binary index
// format. The graph is not included — persist it separately (SaveGraph) and
// pass it to LoadIndex; an index is only valid with the exact graph and
// weight vector it was built from.
//
// The write is atomic: the index is written to a temporary file in the
// same directory and renamed over path on success, so a failed or
// interrupted rebuild never truncates an index a server is about to load.
func SaveIndex(path string, ix *Index) error {
	err := atomicio.WriteFile(path, func(f *os.File) error {
		_, werr := ix.WriteTo(f)
		return werr
	})
	if err != nil {
		return fmt.Errorf("influcomm: saving index: %w", err)
	}
	return nil
}

// LoadIndex reads an index previously written with SaveIndex and binds it
// to g. The file's magic, format version, and vertex count are validated
// against g; a stale or corrupt index is rejected with an error.
func LoadIndex(path string, g *Graph) (*Index, error) {
	ix, err := index.Load(path, g)
	if err != nil {
		return nil, fmt.Errorf("influcomm: loading %s: %w", path, err)
	}
	return ix, nil
}

// Edit is a batch of graph mutations expressed in original vertex IDs.
type Edit = graph.Edit

// ApplyEdits returns a new graph with the edit applied; g is unchanged.
// Prebuilt indexes for g do not apply to the result — that asymmetry
// (indexes need maintenance, online search does not) is one of the paper's
// core motivations.
func ApplyEdits(g *Graph, e Edit) (*Graph, error) {
	return graph.ApplyEdits(g, e)
}

// Verify independently checks one community against the paper's
// Definition 2.2 on g: connectivity, cohesion, maximality, and influence.
// It costs one γ-core peel of the community's weight prefix, so it can
// spot-check results on large graphs.
func Verify(g *Graph, gamma int, c *Community) error {
	return core.Verify(g, int32(gamma), c)
}

// VerifyResult verifies every community of a query result and the
// decreasing-influence ordering.
func VerifyResult(g *Graph, gamma int, res *Result) error {
	return core.VerifyResult(g, int32(gamma), res)
}
