package influcomm

import (
	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/index"
)

// Index is a prebuilt IndexAll structure [26]: it materializes the
// community decomposition of every γ so queries cost only their output
// size. The trade-offs the paper's introduction describes apply: building
// costs ~γmax full-graph passes, the structure serves exactly one graph and
// weight vector, and any edit invalidates it. Prefer TopK/Stream unless the
// same weighted graph is queried many times.
type Index = index.Index

// BuildIndex constructs the IndexAll structure for g.
func BuildIndex(g *Graph) (*Index, error) {
	return index.Build(g)
}

// Edit is a batch of graph mutations expressed in original vertex IDs.
type Edit = graph.Edit

// ApplyEdits returns a new graph with the edit applied; g is unchanged.
// Prebuilt indexes for g do not apply to the result — that asymmetry
// (indexes need maintenance, online search does not) is one of the paper's
// core motivations.
func ApplyEdits(g *Graph, e Edit) (*Graph, error) {
	return graph.ApplyEdits(g, e)
}

// Verify independently checks one community against the paper's
// Definition 2.2 on g: connectivity, cohesion, maximality, and influence.
// It costs one γ-core peel of the community's weight prefix, so it can
// spot-check results on large graphs.
func Verify(g *Graph, gamma int, c *Community) error {
	return core.Verify(g, int32(gamma), c)
}

// VerifyResult verifies every community of a query result and the
// decreasing-influence ordering.
func VerifyResult(g *Graph, gamma int, res *Result) error {
	return core.VerifyResult(g, int32(gamma), res)
}
