// Command icgen generates synthetic vertex-weighted graphs in the formats
// the other tools consume.
//
// Usage:
//
//	icgen -model ba -n 10000 -density 8 -seed 1 -pagerank -o graph.txt
//	icgen -model gnm -n 5000 -edges 40000 -o random.bin
//	icgen -model planted -communities 20 -size 30 -o planted.txt
//	icgen -model collab -groups 100 -size 12 -o dblp.txt
//	icgen -dataset wiki -o wiki.edges            # workload stand-in, semi-external layout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"influcomm"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
	"influcomm/internal/workload"
)

func main() {
	var (
		model       = flag.String("model", "ba", "generator: ba | gnm | planted | collab")
		n           = flag.Int("n", 1000, "vertex count (ba, gnm)")
		density     = flag.Int("density", 5, "edges per vertex (ba)")
		edges       = flag.Int64("edges", 5000, "edge count (gnm)")
		communities = flag.Int("communities", 10, "community count (planted) / groups (collab)")
		size        = flag.Int("size", 20, "community size (planted) / mean group size (collab)")
		seed        = flag.Uint64("seed", 1, "generator seed")
		usePagerank = flag.Bool("pagerank", false, "assign PageRank weights")
		dataset     = flag.String("dataset", "", "emit a workload stand-in instead of generating")
		out         = flag.String("o", "", "output path (required; .bin = binary, .edges = semi-external)")
		format      = flag.String("format", "v1", "edge-file layout for .edges output: v1 (flat) or v2 (delta+varint compressed)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "icgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*model, *n, *density, *edges, *communities, *size, *seed, *usePagerank, *dataset, *out, *format); err != nil {
		fmt.Fprintln(os.Stderr, "icgen:", err)
		os.Exit(1)
	}
}

func run(model string, n, density int, edges int64, communities, size int, seed uint64, usePagerank bool, dataset, out, format string) error {
	var g *graph.Graph
	var err error
	if dataset != "" {
		d, err := workload.ByName(dataset)
		if err != nil {
			return err
		}
		if g, err = d.Load(); err != nil {
			return err
		}
	} else {
		switch model {
		case "ba":
			g, err = gen.PreferentialAttachment(n, density, seed)
		case "gnm":
			g, err = gen.GNM(n, edges, seed)
		case "planted":
			g, err = gen.PlantedCommunities(communities, size, 0.7, 1.0, seed)
		case "collab":
			g, err = gen.Collab(communities, size, seed)
		default:
			return fmt.Errorf("unknown model %q", model)
		}
		if err != nil {
			return err
		}
		if usePagerank {
			if g, err = influcomm.PageRankWeights(g); err != nil {
				return err
			}
		}
	}
	fmt.Printf("generated %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	if strings.HasSuffix(out, ".edges") {
		switch format {
		case "v1":
			return semiext.WriteEdgeFileFormat(out, g, semiext.FormatV1)
		case "v2":
			return semiext.WriteEdgeFileFormat(out, g, semiext.FormatV2)
		default:
			return fmt.Errorf("bad -format %q (want v1 or v2)", format)
		}
	}
	return influcomm.SaveGraph(out, g)
}
