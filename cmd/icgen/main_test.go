package main

import (
	"path/filepath"
	"testing"

	"influcomm"
	"influcomm/internal/semiext"
)

func TestGenerateModels(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		model string
		out   string
	}{
		{"ba-text", "ba", "ba.txt"},
		{"ba-binary", "ba", "ba.bin"},
		{"gnm", "gnm", "gnm.txt"},
		{"planted", "planted", "planted.txt"},
		{"collab", "collab", "collab.txt"},
		{"edgefile", "ba", "ba.edges"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := filepath.Join(dir, c.out)
			if err := run(c.model, 200, 3, 400, 10, 8, 1, true, "", out); err != nil {
				t.Fatalf("run: %v", err)
			}
			if filepath.Ext(out) == ".edges" {
				r, err := semiext.OpenReader(out)
				if err != nil {
					t.Fatalf("reading edge file: %v", err)
				}
				defer r.Close()
				if r.NumVertices() != 200 {
					t.Errorf("edge file has %d vertices, want 200", r.NumVertices())
				}
				return
			}
			g, err := influcomm.LoadGraph(out)
			if err != nil {
				t.Fatalf("loading generated graph: %v", err)
			}
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Error("generated graph is degenerate")
			}
		})
	}
}

func TestGenerateDatasetStandIn(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	out := filepath.Join(t.TempDir(), "email.edges")
	if err := run("", 0, 0, 0, 0, 0, 0, false, "email", out); err != nil {
		t.Fatalf("dataset stand-in: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.txt")
	if err := run("nosuchmodel", 10, 2, 10, 2, 5, 1, false, "", out); err == nil {
		t.Error("unknown model: want error")
	}
	if err := run("", 0, 0, 0, 0, 0, 0, false, "nosuchdataset", out); err == nil {
		t.Error("unknown dataset: want error")
	}
	if err := run("ba", -5, 2, 0, 0, 0, 1, false, "", out); err == nil {
		t.Error("negative n: want error")
	}
}
