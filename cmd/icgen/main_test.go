package main

import (
	"path/filepath"
	"testing"

	"influcomm"
	"influcomm/internal/semiext"
)

func TestGenerateModels(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name  string
		model string
		out   string
	}{
		{"ba-text", "ba", "ba.txt"},
		{"ba-binary", "ba", "ba.bin"},
		{"gnm", "gnm", "gnm.txt"},
		{"planted", "planted", "planted.txt"},
		{"collab", "collab", "collab.txt"},
		{"edgefile", "ba", "ba.edges"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := filepath.Join(dir, c.out)
			if err := run(c.model, 200, 3, 400, 10, 8, 1, true, "", out, "v1"); err != nil {
				t.Fatalf("run: %v", err)
			}
			if filepath.Ext(out) == ".edges" {
				r, err := semiext.OpenReader(out)
				if err != nil {
					t.Fatalf("reading edge file: %v", err)
				}
				defer r.Close()
				if r.NumVertices() != 200 {
					t.Errorf("edge file has %d vertices, want 200", r.NumVertices())
				}
				return
			}
			g, err := influcomm.LoadGraph(out)
			if err != nil {
				t.Fatalf("loading generated graph: %v", err)
			}
			if g.NumVertices() == 0 || g.NumEdges() == 0 {
				t.Error("generated graph is degenerate")
			}
		})
	}
}

func TestGenerateDatasetStandIn(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	out := filepath.Join(t.TempDir(), "email.edges")
	if err := run("", 0, 0, 0, 0, 0, 0, false, "email", out, "v1"); err != nil {
		t.Fatalf("dataset stand-in: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.txt")
	if err := run("nosuchmodel", 10, 2, 10, 2, 5, 1, false, "", out, "v1"); err == nil {
		t.Error("unknown model: want error")
	}
	if err := run("", 0, 0, 0, 0, 0, 0, false, "nosuchdataset", out, "v1"); err == nil {
		t.Error("unknown dataset: want error")
	}
	if err := run("ba", -5, 2, 0, 0, 0, 1, false, "", out, "v1"); err == nil {
		t.Error("negative n: want error")
	}
}

// TestGenerateV2EdgeFile: -format v2 writes the compressed layout, which
// the reader detects; a bad format is an error.
func TestGenerateV2EdgeFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.edges")
	if err := run("planted", 0, 0, 0, 10, 12, 3, false, "", out, "v2"); err != nil {
		t.Fatalf("run: %v", err)
	}
	r, err := semiext.OpenReader(out)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Format() != semiext.FormatV2 {
		t.Errorf("written format v%d, want v2", r.Format())
	}
	if err := run("ba", 50, 3, 0, 0, 0, 1, false, "", out, "flat"); err == nil {
		t.Error("bad format: want error")
	}
}
