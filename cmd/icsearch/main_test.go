package main

import (
	"os"
	"path/filepath"
	"testing"

	"influcomm"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunModes(t *testing.T) {
	path := writeFixture(t)
	cases := []struct {
		name                                              string
		truss, nonContain, progressive, pagerank, verbose bool
	}{
		{name: "default"},
		{name: "verbose", verbose: true},
		{name: "progressive", progressive: true},
		{name: "noncontainment", nonContain: true},
		{name: "truss", truss: true},
		{name: "pagerank", pagerank: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gamma := 3
			if c.truss {
				gamma = 4
			}
			if err := run(path, 2, gamma, c.truss, c.nonContain, c.progressive, c.pagerank, c.verbose); err != nil {
				t.Fatalf("run(%s): %v", c.name, err)
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.txt"), 1, 3, false, false, false, false, false); err == nil {
		t.Error("missing graph file: want error")
	}
}

func TestRunBadQuery(t *testing.T) {
	path := writeFixture(t)
	if err := run(path, 0, 3, false, false, false, false, false); err == nil {
		t.Error("k=0: want error")
	}
	if err := run(path, 1, 0, false, false, false, false, false); err == nil {
		t.Error("gamma=0: want error")
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
