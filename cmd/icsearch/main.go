// Command icsearch answers top-k influential γ-community queries over a
// graph file from the command line.
//
// Usage:
//
//	icsearch -graph g.txt -k 10 -gamma 5 [-truss] [-noncontainment]
//	         [-progressive] [-pagerank] [-v]
//
// The graph file uses the text format of the influcomm package ("v id w"
// and "e u v" lines), or the binary format when it ends in ".bin". With
// -pagerank the input weights are replaced by PageRank scores first. With
// -progressive results stream as they are found and -k only limits how many
// are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"influcomm"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to the graph file (required)")
		k           = flag.Int("k", 10, "number of communities to report")
		gamma       = flag.Int("gamma", 5, "cohesion threshold γ")
		useTruss    = flag.Bool("truss", false, "use γ-truss cohesiveness instead of γ-core")
		nonContain  = flag.Bool("noncontainment", false, "report only non-containment communities")
		progressive = flag.Bool("progressive", false, "stream results progressively (LocalSearch-P)")
		usePagerank = flag.Bool("pagerank", false, "replace vertex weights with PageRank scores")
		verbose     = flag.Bool("v", false, "print every member of each community")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "icsearch: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*graphPath, *k, *gamma, *useTruss, *nonContain, *progressive, *usePagerank, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "icsearch:", err)
		os.Exit(1)
	}
}

func run(path string, k, gamma int, useTruss, nonContain, progressive, usePagerank, verbose bool) error {
	g, err := influcomm.LoadGraph(path)
	if err != nil {
		return err
	}
	if usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			return err
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	start := time.Now()
	switch {
	case useTruss:
		comms, err := influcomm.TopKTruss(g, k, gamma)
		if err != nil {
			return err
		}
		for i, c := range comms {
			fmt.Printf("#%d influence=%.6g size=%d keynode=%s\n", i+1, c.Influence(), c.Size(), g.Label(c.Keynode()))
			if verbose {
				printVertices(g, c.Vertices())
			}
		}
	case progressive:
		reported := 0
		_, err := influcomm.Stream(g, gamma, func(c *influcomm.Community) bool {
			reported++
			fmt.Printf("#%d influence=%.6g size=%d keynode=%s (%.3fms)\n",
				reported, c.Influence(), c.Size(), g.Label(c.Keynode()),
				float64(time.Since(start))/float64(time.Millisecond))
			if verbose {
				printVertices(g, c.Vertices())
			}
			return reported < k
		})
		if err != nil {
			return err
		}
	default:
		var res *influcomm.Result
		if nonContain {
			res, err = influcomm.TopKNonContainment(g, k, gamma)
		} else {
			res, err = influcomm.TopK(g, k, gamma)
		}
		if err != nil {
			return err
		}
		for i, c := range res.Communities {
			fmt.Printf("#%d influence=%.6g size=%d keynode=%s\n", i+1, c.Influence(), c.Size(), g.Label(c.Keynode()))
			if verbose {
				printVertices(g, c.Vertices())
			}
		}
		fmt.Printf("accessed %d of %d vertices in %d round(s)\n",
			res.Stats.FinalPrefix, g.NumVertices(), res.Stats.Rounds)
	}
	fmt.Printf("total: %.3fms\n", float64(time.Since(start))/float64(time.Millisecond))
	return nil
}

func printVertices(g *influcomm.Graph, vs []int32) {
	for _, v := range vs {
		fmt.Printf("    %s (weight %.6g)\n", g.Label(v), g.Weight(v))
	}
}
