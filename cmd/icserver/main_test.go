package main

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"influcomm"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(graphPath string) config {
	return config{
		graphPath:       graphPath,
		addr:            "127.0.0.1:0",
		maxK:            100,
		queryTimeout:    10 * time.Second,
		readTimeout:     5 * time.Second,
		writeTimeout:    10 * time.Second,
		idleTimeout:     time.Minute,
		shutdownTimeout: 5 * time.Second,
	}
}

// TestServeSmoke boots the real server on an ephemeral port, exercises
// every endpoint, then checks SIGTERM-style cancellation shuts it down
// cleanly.
func TestServeSmoke(t *testing.T) {
	cfg := testConfig(writeFixture(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	var health map[string]string
	mustGet(t, base+"/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	var topk struct {
		Communities []struct {
			Influence float64 `json:"influence"`
		} `json:"communities"`
	}
	mustGet(t, base+"/v1/topk?k=2&gamma=3", &topk)
	if len(topk.Communities) != 2 || topk.Communities[0].Influence != 13 {
		t.Errorf("topk = %+v", topk)
	}

	var stats struct {
		Vertices int   `json:"vertices"`
		Queries  int64 `json:"queries"`
	}
	mustGet(t, base+"/v1/stats", &stats)
	if stats.Vertices != 10 || stats.Queries != 1 {
		t.Errorf("stats = %+v", stats)
	}

	cancel() // deliver the shutdown signal
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeBadGraph(t *testing.T) {
	cfg := testConfig(filepath.Join(t.TempDir(), "missing.txt"))
	if err := serve(context.Background(), cfg, nil); err == nil {
		t.Error("missing graph file: want error")
	}
}

func mustGet(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
