package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"influcomm"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(graphPath string) config {
	return config{
		graphPath:       graphPath,
		addr:            "127.0.0.1:0",
		maxK:            100,
		queryTimeout:    10 * time.Second,
		readTimeout:     5 * time.Second,
		writeTimeout:    10 * time.Second,
		idleTimeout:     time.Minute,
		shutdownTimeout: 5 * time.Second,
	}
}

// TestServeSmoke boots the real server on an ephemeral port, exercises
// every endpoint, then checks SIGTERM-style cancellation shuts it down
// cleanly.
func TestServeSmoke(t *testing.T) {
	cfg := testConfig(writeFixture(t))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	var health struct {
		Status string `json:"status"`
		Ready  bool   `json:"ready"`
	}
	mustGet(t, base+"/healthz", &health)
	if health.Status != "ok" || !health.Ready {
		t.Errorf("healthz = %+v", health)
	}

	var topk struct {
		Communities []struct {
			Influence float64 `json:"influence"`
		} `json:"communities"`
	}
	mustGet(t, base+"/v1/topk?k=2&gamma=3", &topk)
	if len(topk.Communities) != 2 || topk.Communities[0].Influence != 13 {
		t.Errorf("topk = %+v", topk)
	}

	var stats struct {
		Vertices int   `json:"vertices"`
		Queries  int64 `json:"queries"`
	}
	mustGet(t, base+"/v1/stats", &stats)
	if stats.Vertices != 10 || stats.Queries != 1 {
		t.Errorf("stats = %+v", stats)
	}

	cancel() // deliver the shutdown signal
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// writeRankFixture writes a graph whose original IDs coincide with weight
// ranks, plus its semi-external edge file, so in-memory and semi-external
// responses are comparable byte for byte.
func writeRankFixture(t *testing.T) (graphPath, edgePath string) {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(20-id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
		{3, 5}, {4, 0}, {4, 9}, {8, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "g.txt")
	if err := influcomm.SaveGraph(graphPath, g); err != nil {
		t.Fatal(err)
	}
	edgePath = filepath.Join(dir, "g.edges")
	if err := influcomm.SaveEdgeFile(edgePath, g); err != nil {
		t.Fatal(err)
	}
	return graphPath, edgePath
}

func TestParseDatasetSpec(t *testing.T) {
	d, err := parseDatasetSpec("wiki=/data/wiki.edges,backend=semiext,index=/data/wiki.icx")
	if err != nil {
		t.Fatal(err)
	}
	if d.name != "wiki" || d.path != "/data/wiki.edges" || d.backend != "semiext" || d.index != "/data/wiki.icx" {
		t.Errorf("parsed %+v", d)
	}
	d, err = parseDatasetSpec("big=/d/g.edges,backend=semiext,prefix-cache=64M,mode=mmap")
	if err != nil {
		t.Fatal(err)
	}
	if d.prefixCache != 64<<20 || d.mode != "mmap" {
		t.Errorf("parsed %+v", d)
	}
	d, err = parseDatasetSpec("dyn=/d/g.edges,mutable=true")
	if err != nil {
		t.Fatal(err)
	}
	if !d.mutable {
		t.Errorf("parsed %+v, want mutable", d)
	}
	d, err = parseDatasetSpec("par=/d/g.edges,backend=semiext,workers=8")
	if err != nil {
		t.Fatal(err)
	}
	if d.workers != 8 {
		t.Errorf("parsed %+v, want workers=8", d)
	}
	d, err = parseDatasetSpec("live=/d/g.edges,mutable=true,reindex=auto,debounce=250ms")
	if err != nil {
		t.Fatal(err)
	}
	if d.reindex != "auto" || d.debounce != 250*time.Millisecond {
		t.Errorf("parsed %+v, want reindex=auto debounce=250ms", d)
	}
	d, err = parseDatasetSpec("off=/d/g.edges,backend=mutable,reindex=off")
	if err != nil {
		t.Fatal(err)
	}
	if d.reindex != "off" {
		t.Errorf("parsed %+v, want reindex=off", d)
	}
	d, err = parseDatasetSpec("live=/d/g.edges,mutable=true,reindex=auto,repair-frac=0.4")
	if err != nil {
		t.Fatal(err)
	}
	if d.repairFrac != 0.4 {
		t.Errorf("parsed %+v, want repairFrac=0.4", d)
	}
	d, err = parseDatasetSpec("live=/d/g.edges,mutable=true,reindex=auto,repair-frac=1")
	if err != nil {
		t.Fatal(err)
	}
	if d.repairFrac != 1 {
		t.Errorf("parsed %+v, want repairFrac=1", d)
	}
	for _, bad := range []string{"", "noequals", "name=", "n=p,bogus", "n=p,k=v", "n=p,prefix-cache=lots", "n=p,prefix-cache=-1",
		"n=p,mutable=yes", "n=p,backend=semiext,mutable=true", "n=p,workers=-2", "n=p,workers=lots",
		"n=p,reindex=always", "n=p,reindex=auto", "n=p,backend=semiext,reindex=auto",
		"n=p,mutable=true,debounce=soon", "n=p,mutable=true,debounce=-1s",
		"n=p,mutable=true,repair-frac=0", "n=p,mutable=true,repair-frac=1.5",
		"n=p,mutable=true,repair-frac=-0.1", "n=p,mutable=true,repair-frac=some"} {
		if _, err := parseDatasetSpec(bad); err == nil {
			t.Errorf("%q: want parse error", bad)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"123":    123,
		"4K":     4 << 10,
		"4k":     4 << 10,
		"16KiB":  16 << 10,
		"64M":    64 << 20,
		"64MB":   64 << 20,
		"2G":     2 << 30,
		"2gib":   2 << 30,
		" 8 M":   8 << 20,
		"512KB ": 512 << 10,
	}
	for in, want := range cases {
		got, err := parseByteSize(strings.TrimSpace(in))
		if err != nil || got != want {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-5", "1T", "9999999999999M"} {
		if _, err := parseByteSize(bad); err == nil {
			t.Errorf("parseByteSize(%q): want error", bad)
		}
	}
}

// TestPprofListener starts the separate profiling listener and fetches the
// index: the endpoints must be reachable on their own port only.
func TestPprofListener(t *testing.T) {
	psrv, pln, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer psrv.Close()
	resp, err := http.Get("http://" + pln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index returned %d", resp.StatusCode)
	}
	if _, _, err := startPprof("256.0.0.1:bad"); err == nil {
		t.Error("bad pprof address: want error")
	}
}

// TestServeMultiDataset boots the real server with a default in-memory
// dataset and a semi-external sibling of the same graph: both must answer,
// byte-identically modulo timing fields, and appear on /v1/datasets.
func TestServeMultiDataset(t *testing.T) {
	graphPath, edgePath := writeRankFixture(t)
	cfg := testConfig(graphPath)
	cfg.cacheSize = 16
	cfg.datasets = []datasetSpec{{name: "se", path: edgePath, backend: "semiext", workers: 4}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	normalize := func(raw map[string]any) string {
		delete(raw, "elapsed_ms")
		delete(raw, "cached")
		b, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var def, se map[string]any
	mustGet(t, base+"/v1/topk?k=2&gamma=3", &def)
	mustGet(t, base+"/v1/topk?k=2&gamma=3&dataset=se", &se)
	a, b := normalize(def), normalize(se)
	if a != b {
		t.Errorf("semi-external dataset diverges from in-memory serving\n mem: %s\n  se: %s", a, b)
	}

	var list struct {
		Datasets []struct {
			Name    string `json:"name"`
			Backend string `json:"backend"`
		} `json:"datasets"`
	}
	mustGet(t, base+"/v1/datasets", &list)
	if len(list.Datasets) != 2 {
		t.Fatalf("listed %d datasets, want 2", len(list.Datasets))
	}
	backends := map[string]string{}
	for _, d := range list.Datasets {
		backends[d.Name] = d.Backend
	}
	if backends["default"] != "memory" || backends["se"] != "semiext" {
		t.Errorf("backends = %v", backends)
	}

	// The cache marks a repeated query.
	var again map[string]any
	mustGet(t, base+"/v1/topk?k=2&gamma=3&dataset=se", &again)
	if again["cached"] != true {
		t.Error("repeated query not served from cache")
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

func TestServeBadGraph(t *testing.T) {
	cfg := testConfig(filepath.Join(t.TempDir(), "missing.txt"))
	if err := serve(context.Background(), cfg, nil); err == nil {
		t.Error("missing graph file: want error")
	}
}

// TestServeWithIndex boots with a prebuilt index and checks queries are
// answered from it (index_queries on /v1/stats) with the same payload the
// online path produces.
func TestServeWithIndex(t *testing.T) {
	graphPath := writeFixture(t)
	g, err := influcomm.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := influcomm.BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "g.icx")
	if err := influcomm.SaveIndex(indexPath, ix); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(graphPath)
	cfg.indexPath = indexPath
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	var topk struct {
		Communities []struct {
			Influence float64 `json:"influence"`
		} `json:"communities"`
	}
	mustGet(t, base+"/v1/topk?k=2&gamma=3", &topk)
	if len(topk.Communities) != 2 || topk.Communities[0].Influence != 13 {
		t.Errorf("index-served topk = %+v", topk)
	}
	var stats struct {
		IndexLoaded  bool  `json:"index_loaded"`
		IndexQueries int64 `json:"index_queries"`
		LocalQueries int64 `json:"local_queries"`
	}
	mustGet(t, base+"/v1/stats", &stats)
	if !stats.IndexLoaded || stats.IndexQueries != 1 || stats.LocalQueries != 0 {
		t.Errorf("stats = %+v, want index_loaded with 1 index query", stats)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

// TestServeStaleIndexRejected: an index built for a different graph must
// fail startup with a clear error, not serve wrong answers.
func TestServeStaleIndexRejected(t *testing.T) {
	var b influcomm.Builder
	for id := int32(0); id < 4; id++ {
		b.AddVertex(id, float64(id+1))
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	small, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := influcomm.BuildIndex(small)
	if err != nil {
		t.Fatal(err)
	}
	indexPath := filepath.Join(t.TempDir(), "stale.icx")
	if err := influcomm.SaveIndex(indexPath, ix); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(writeFixture(t)) // 10-vertex graph, 4-vertex index
	cfg.indexPath = indexPath
	err = serve(context.Background(), cfg, nil)
	if err == nil {
		t.Fatal("stale index: want startup error")
	}
	if !strings.Contains(err.Error(), "stale index") {
		t.Errorf("error %q does not name the stale index", err)
	}
}

func mustGet(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestServeMutableDataset boots the server with a mutable edge-file
// dataset, applies updates over HTTP, and checks that a graceful shutdown
// compacts the write-ahead log back into the edge file.
func TestServeMutableDataset(t *testing.T) {
	_, edgePath := writeRankFixture(t)
	graphPath := writeFixture(t)
	cfg := testConfig(graphPath)
	cfg.datasets = []datasetSpec{{name: "dyn", path: edgePath, mutable: true}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	var before struct {
		Edges int64 `json:"edges"`
	}
	mustGet(t, base+"/v1/datasets", &struct{}{})
	resp, err := http.Post(base+"/v1/admin/datasets/dyn/updates", "application/json",
		strings.NewReader(`{"updates":[{"op":"delete","u":0,"v":1},{"op":"delete","u":2,"v":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ur struct {
		Deleted       int    `json:"deleted"`
		SnapshotEpoch uint64 `json:"snapshot_epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ur.Deleted != 2 || ur.SnapshotEpoch != 1 {
		t.Fatalf("updates: status %d, %+v", resp.StatusCode, ur)
	}
	var list struct {
		Datasets []struct {
			Name           string `json:"name"`
			Backend        string `json:"backend"`
			Edges          int64  `json:"edges"`
			Mutable        bool   `json:"mutable"`
			UpdatesApplied int64  `json:"updates_applied"`
		} `json:"datasets"`
	}
	mustGet(t, base+"/v1/datasets", &list)
	for _, d := range list.Datasets {
		if d.Name == "dyn" {
			if d.Backend != "mutable" || !d.Mutable || d.UpdatesApplied != 2 || d.Edges != 14 {
				t.Fatalf("dyn dataset after updates: %+v", d)
			}
			before.Edges = d.Edges
		}
	}
	if before.Edges == 0 {
		t.Fatal("dyn dataset missing from listing")
	}

	// Graceful shutdown must compact: log gone, edge file holds 14 edges.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if _, err := os.Stat(edgePath + ".log"); !os.IsNotExist(err) {
		t.Fatalf("update log survived clean shutdown: %v", err)
	}
	st, err := influcomm.OpenMutableStore(edgePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumEdges() != 14 || st.UpdatesApplied() != 0 {
		t.Fatalf("compacted edge file has %d edges and %d replayed updates, want 14 and 0",
			st.NumEdges(), st.UpdatesApplied())
	}
}
