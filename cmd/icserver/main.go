// Command icserver serves top-k influential community queries over HTTP.
//
// Usage:
//
//	icserver -graph g.txt [-index g.icx] [-addr :8080] [-pagerank]
//	         [-dataset name=path[,backend=semiext][,index=p.icx]
//	                  [,prefix-cache=SIZE][,mode=auto|mmap|stream]
//	                  [,workers=N][,mutable=true]
//	                  [,reindex=auto|off][,debounce=DUR][,repair-frac=F]]...
//	         [-cache 256] [-maxk 10000] [-query-timeout 30s]
//	         [-max-inflight 64] [-read-timeout 10s] [-write-timeout 60s]
//	         [-idle-timeout 2m] [-shutdown-timeout 15s] [-pprof addr]
//
// Endpoints (JSON):
//
//	GET    /healthz
//	GET    /v1/stats
//	GET    /v1/datasets
//	GET    /v1/topk?k=10&gamma=5[&noncontainment=1|&truss=1][&dataset=name]
//	POST   /v1/query                 {"query": "DSL batch"[, "dataset": name]}
//	POST   /v1/admin/datasets
//	DELETE /v1/admin/datasets/{name}
//	POST   /v1/admin/datasets/{name}/updates
//
// The -graph file becomes the "default" dataset; each -dataset flag (which
// may repeat) loads a further named dataset, either fully in memory
// (backend omitted) from a graph file, or semi-externally
// (backend=semiext) from an edge file written by icindex -edges — the
// graph then never fully loads; queries read exactly the weight-ranked
// prefix they need through a shared memory-mapped view (mode=stream forces
// the sequential reader), and prefix-cache=SIZE (e.g. 64M) budgets a
// shared decoded-prefix cache that serves cache-fitting queries at
// in-memory speed. workers=N lets each large query evaluate its candidate
// prefixes on up to N goroutines (byte-identical results; edge files in
// the compressed v2 layout also bulk-decode in parallel). mutable=true
// opens an edge file as a dynamic dataset:
// POST /v1/admin/datasets/{name}/updates applies edge insertions and
// deletions online (queries keep serving from immutable snapshots, never
// pausing), every batch is fsynced to a write-ahead log beside the edge
// file before it is visible, the log replays on restart after a crash,
// and a clean shutdown compacts it back into the edge file. reindex=auto
// on a mutable dataset keeps its prebuilt index current across updates:
// small deltas are repaired synchronously before the update response,
// larger ones trigger an epoch-tagged background rebuild (queries fall
// back to LocalSearch until it attaches), debounce=DUR (e.g. 250ms)
// sets how long the rebuild worker coalesces an update burst, and
// repair-frac=F in (0, 1] overrides the synchronous-repair gate (default
// 0.25: a delta touching at most a quarter of the weight ranking repairs
// in place); without
// reindex=auto, the first effective update drops the index for good. On
// mutable datasets workers=N bounds the rebuild/repair parallelism
// instead of query parallelism. Datasets can
// also be loaded and unloaded at runtime
// through the admin endpoints — protect those with -admin-token (or keep
// the port private): they can unload live datasets and open server-side
// files. Repeated identical queries are answered
// from an LRU result cache (-cache entries, 0 disables).
//
// With -index (or a per-dataset index= option), a prebuilt index file
// (see icindex) is loaded and validated against the graph at startup;
// default-semantics queries are then served from the index in
// output-proportional time, with pooled LocalSearch answering the
// variants the index does not cover. A stale index — built for a
// different graph — is rejected before the server starts. Build the index
// with the same -pagerank setting the server runs with (-pagerank applies
// to the default dataset only).
//
// The server drains in-flight requests on SIGINT/SIGTERM, waiting up to
// -shutdown-timeout before closing remaining connections.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"influcomm"
	"influcomm/internal/server"
)

// datasetSpec is one parsed -dataset flag.
type datasetSpec struct {
	name        string
	path        string
	backend     string
	index       string
	mode        string
	prefixCache int64
	workers     int
	mutable     bool
	reindex     string
	debounce    time.Duration
	repairFrac  float64
}

// parseByteSize parses a byte count with an optional K/M/G suffix (base
// 1024; a trailing "B" or "iB" is accepted, case-insensitively).
func parseByteSize(s string) (int64, error) {
	orig := s
	u := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		tail string
		mul  int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(u, suf.tail) {
			mult = suf.mul
			s = s[:len(s)-len(suf.tail)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte size %q", orig)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", orig)
	}
	return n * mult, nil
}

// parseDatasetSpec parses
// "name=path[,backend=semiext][,index=p.icx][,prefix-cache=SIZE][,mode=m][,workers=N][,mutable=true][,reindex=auto|off][,debounce=DUR][,repair-frac=F]".
func parseDatasetSpec(spec string) (datasetSpec, error) {
	var d datasetSpec
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return d, fmt.Errorf("bad -dataset %q: want name=path[,backend=semiext][,index=file][,prefix-cache=SIZE][,mode=auto|mmap|stream][,workers=N][,mutable=true][,reindex=auto|off][,debounce=DUR][,repair-frac=F]", spec)
	}
	d.name = name
	parts := strings.Split(rest, ",")
	d.path = parts[0]
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return d, fmt.Errorf("bad -dataset option %q in %q", p, spec)
		}
		switch k {
		case "backend":
			d.backend = v
		case "index":
			d.index = v
		case "mode":
			d.mode = v
		case "prefix-cache":
			n, err := parseByteSize(v)
			if err != nil {
				return d, fmt.Errorf("bad -dataset option prefix-cache in %q: %v", spec, err)
			}
			d.prefixCache = n
		case "workers":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return d, fmt.Errorf("bad -dataset option workers=%q in %q (want a non-negative integer)", v, spec)
			}
			d.workers = n
		case "mutable":
			switch v {
			case "true":
				d.mutable = true
			case "false":
			default:
				return d, fmt.Errorf("bad -dataset option mutable=%q in %q (want true or false)", v, spec)
			}
		case "reindex":
			switch v {
			case "auto", "off":
				d.reindex = v
			default:
				return d, fmt.Errorf("bad -dataset option reindex=%q in %q (want auto or off)", v, spec)
			}
		case "debounce":
			dur, err := time.ParseDuration(v)
			if err != nil || dur < 0 {
				return d, fmt.Errorf("bad -dataset option debounce=%q in %q (want a non-negative Go duration, e.g. 250ms)", v, spec)
			}
			d.debounce = dur
		case "repair-frac":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1 {
				return d, fmt.Errorf("bad -dataset option repair-frac=%q in %q (want a fraction in (0, 1], e.g. 0.25)", v, spec)
			}
			d.repairFrac = f
		default:
			return d, fmt.Errorf("unknown -dataset option %q in %q", k, spec)
		}
	}
	if d.mutable && d.backend != "" && d.backend != "mutable" {
		return d, fmt.Errorf("-dataset %q: mutable=true conflicts with backend=%s", spec, d.backend)
	}
	if d.reindex == "auto" && !d.mutable && d.backend != "mutable" {
		return d, fmt.Errorf("-dataset %q: reindex=auto needs mutable=true (index maintenance works on mutable datasets only)", spec)
	}
	return d, nil
}

// config collects the flag values; main parses, serve runs.
type config struct {
	graphPath       string
	indexPath       string
	addr            string
	pprofAddr       string
	usePagerank     bool
	datasets        []datasetSpec
	cacheSize       int
	adminToken      string
	maxK            int
	maxInFlight     int
	queryTimeout    time.Duration
	readTimeout     time.Duration
	writeTimeout    time.Duration
	idleTimeout     time.Duration
	shutdownTimeout time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "path to the graph file (required)")
	flag.StringVar(&cfg.indexPath, "index", "", "prebuilt index file (icindex output); serves queries index-first when set")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this separate address (empty = off; keep it private)")
	flag.BoolVar(&cfg.usePagerank, "pagerank", false, "replace vertex weights with PageRank scores")
	flag.Func("dataset", "additional dataset: name=path[,backend=semiext][,index=file][,prefix-cache=SIZE][,mode=auto|mmap|stream][,workers=N][,mutable=true][,reindex=auto|off][,debounce=DUR][,repair-frac=F] (repeatable)", func(spec string) error {
		d, err := parseDatasetSpec(spec)
		if err != nil {
			return err
		}
		cfg.datasets = append(cfg.datasets, d)
		return nil
	})
	flag.IntVar(&cfg.cacheSize, "cache", 256, "query-result cache entries (0 disables)")
	flag.StringVar(&cfg.adminToken, "admin-token", "", "bearer token required on /v1/admin endpoints (empty = open; keep the port private)")
	flag.IntVar(&cfg.maxK, "maxk", 10000, "largest k a single request may ask for")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "concurrent query limit, 503 beyond it (0 = 4×GOMAXPROCS, -1 = unlimited)")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 30*time.Second, "per-request search deadline (0 = none)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 60*time.Second, "HTTP write timeout")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 15*time.Second, "graceful shutdown drain limit")
	flag.Parse()
	if cfg.graphPath == "" {
		fmt.Fprintln(os.Stderr, "icserver: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, nil); err != nil {
		log.Fatalf("icserver: %v", err)
	}
}

// startPprof serves net/http/pprof on its own listener and returns the
// running server; the caller closes it on shutdown.
func startPprof(addr string) (*http.Server, net.Listener, error) {
	pmux := http.NewServeMux()
	pmux.HandleFunc("/debug/pprof/", pprof.Index)
	pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	pln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("pprof listener: %w", err)
	}
	psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("icserver: pprof server: %v", err)
		}
	}()
	return psrv, pln, nil
}

// serve loads the graph and runs the HTTP server until ctx is cancelled,
// then drains gracefully. When ready is non-nil the bound listener address
// is sent on it once the server is accepting connections (used by tests to
// serve on an ephemeral port).
func serve(ctx context.Context, cfg config, ready chan<- string) error {
	g, err := influcomm.LoadGraph(cfg.graphPath)
	if err != nil {
		return err
	}
	if cfg.usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			return err
		}
	}
	opts := []server.Option{
		server.WithMaxK(cfg.maxK),
		server.WithQueryTimeout(cfg.queryTimeout),
		server.WithResultCache(cfg.cacheSize),
	}
	if cfg.adminToken != "" {
		opts = append(opts, server.WithAdminToken(cfg.adminToken))
	}
	if cfg.indexPath != "" {
		ix, err := influcomm.LoadIndex(cfg.indexPath, g)
		if err != nil {
			return fmt.Errorf("loading index: %w", err)
		}
		log.Printf("icserver: index loaded from %s (γmax %d, %d int32 slots), serving index-first", cfg.indexPath, ix.GammaMax(), ix.MemoryFootprint())
		opts = append(opts, server.WithIndex(ix))
	}
	if cfg.maxInFlight != 0 {
		opts = append(opts, server.WithMaxInFlight(cfg.maxInFlight))
	}
	for _, d := range cfg.datasets {
		var sopts []influcomm.StoreOption
		if d.prefixCache > 0 {
			sopts = append(sopts, influcomm.WithPrefixCacheBytes(d.prefixCache))
		}
		if d.mode != "" {
			sopts = append(sopts, influcomm.WithEdgeFileMode(d.mode))
		}
		if d.workers > 0 {
			sopts = append(sopts, influcomm.WithQueryWorkers(d.workers))
		}
		backend := d.backend
		if d.mutable {
			backend = "mutable"
		}
		st, err := influcomm.OpenStore(d.path, backend, sopts...)
		if err != nil {
			return fmt.Errorf("dataset %s: %w", d.name, err)
		}
		cfgDS := server.DatasetConfig{Store: st, Reindex: d.reindex, ReindexDebounce: d.debounce, RepairFraction: d.repairFrac}
		if backend == "mutable" {
			// On the mutable backend workers=N routes to the maintenance
			// pipeline (the store itself ignores it).
			cfgDS.ReindexWorkers = d.workers
		}
		if d.index != "" {
			dg := st.Graph()
			if dg == nil {
				return fmt.Errorf("dataset %s: an index needs the memory backend", d.name)
			}
			ix, err := influcomm.LoadIndex(d.index, dg)
			if err != nil {
				return fmt.Errorf("dataset %s: loading index: %w", d.name, err)
			}
			cfgDS.Index = ix
		}
		opts = append(opts, server.WithDataset(d.name, cfgDS))
		log.Printf("icserver: dataset %s: %d vertices, %d edges via %s backend from %s",
			d.name, st.NumVertices(), st.NumEdges(), st.Backend(), d.path)
	}
	h, err := server.New(g, opts...)
	if err != nil {
		return err
	}

	// The profiling endpoints run on their own listener so they can stay
	// on a private address (or off entirely, the default) while the query
	// port is exposed: future perf work profiles the serving tier in place
	// without widening the public surface.
	if cfg.pprofAddr != "" {
		psrv, pln, err := startPprof(cfg.pprofAddr)
		if err != nil {
			return err
		}
		defer psrv.Close()
		log.Printf("icserver: pprof on http://%s/debug/pprof/", pln.Addr())
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("icserver: serving %d vertices, %d edges on %s", g.NumVertices(), g.NumEdges(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("icserver: shutting down, draining for up to %s", cfg.shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		h.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		h.Close()
		return err
	}
	// Closing the dataset backends after the HTTP drain compacts mutable
	// datasets' write-ahead logs back into their edge files, so a clean
	// shutdown leaves no log to replay on the next start.
	return h.Close()
}
