// Command icserver serves top-k influential community queries over HTTP.
//
// Usage:
//
//	icserver -graph g.txt [-addr :8080] [-pagerank] [-maxk 10000]
//
// Endpoints (JSON):
//
//	GET /v1/stats
//	GET /v1/topk?k=10&gamma=5[&noncontainment=1|&truss=1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"influcomm"
	"influcomm/internal/server"
)

func main() {
	var (
		graphPath   = flag.String("graph", "", "path to the graph file (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		usePagerank = flag.Bool("pagerank", false, "replace vertex weights with PageRank scores")
		maxK        = flag.Int("maxk", 10000, "largest k a single request may ask for")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "icserver: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := influcomm.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("icserver: %v", err)
	}
	if *usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			log.Fatalf("icserver: %v", err)
		}
	}
	srv, err := server.New(g, server.WithMaxK(*maxK))
	if err != nil {
		log.Fatalf("icserver: %v", err)
	}
	log.Printf("icserver: serving %d vertices, %d edges on %s", g.NumVertices(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
