// Command icserver serves top-k influential community queries over HTTP.
//
// Usage:
//
//	icserver -graph g.txt [-index g.icx] [-addr :8080] [-pagerank]
//	         [-dataset name=path[,backend=semiext][,index=p.icx]]...
//	         [-cache 256] [-maxk 10000] [-query-timeout 30s]
//	         [-max-inflight 64] [-read-timeout 10s] [-write-timeout 60s]
//	         [-idle-timeout 2m] [-shutdown-timeout 15s]
//
// Endpoints (JSON):
//
//	GET    /healthz
//	GET    /v1/stats
//	GET    /v1/datasets
//	GET    /v1/topk?k=10&gamma=5[&noncontainment=1|&truss=1][&dataset=name]
//	POST   /v1/admin/datasets
//	DELETE /v1/admin/datasets/{name}
//
// The -graph file becomes the "default" dataset; each -dataset flag (which
// may repeat) loads a further named dataset, either fully in memory
// (backend omitted) from a graph file, or semi-externally
// (backend=semiext) from an edge file written by icindex -edges — the
// graph then never fully loads; queries stream exactly the weight-ranked
// prefix they need. Datasets can also be loaded and unloaded at runtime
// through the admin endpoints — protect those with -admin-token (or keep
// the port private): they can unload live datasets and open server-side
// files. Repeated identical queries are answered
// from an LRU result cache (-cache entries, 0 disables).
//
// With -index (or a per-dataset index= option), a prebuilt index file
// (see icindex) is loaded and validated against the graph at startup;
// default-semantics queries are then served from the index in
// output-proportional time, with pooled LocalSearch answering the
// variants the index does not cover. A stale index — built for a
// different graph — is rejected before the server starts. Build the index
// with the same -pagerank setting the server runs with (-pagerank applies
// to the default dataset only).
//
// The server drains in-flight requests on SIGINT/SIGTERM, waiting up to
// -shutdown-timeout before closing remaining connections.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"influcomm"
	"influcomm/internal/server"
)

// datasetSpec is one parsed -dataset flag.
type datasetSpec struct {
	name    string
	path    string
	backend string
	index   string
}

// parseDatasetSpec parses "name=path[,backend=semiext][,index=p.icx]".
func parseDatasetSpec(spec string) (datasetSpec, error) {
	var d datasetSpec
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return d, fmt.Errorf("bad -dataset %q: want name=path[,backend=semiext][,index=file]", spec)
	}
	d.name = name
	parts := strings.Split(rest, ",")
	d.path = parts[0]
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return d, fmt.Errorf("bad -dataset option %q in %q", p, spec)
		}
		switch k {
		case "backend":
			d.backend = v
		case "index":
			d.index = v
		default:
			return d, fmt.Errorf("unknown -dataset option %q in %q", k, spec)
		}
	}
	return d, nil
}

// config collects the flag values; main parses, serve runs.
type config struct {
	graphPath       string
	indexPath       string
	addr            string
	usePagerank     bool
	datasets        []datasetSpec
	cacheSize       int
	adminToken      string
	maxK            int
	maxInFlight     int
	queryTimeout    time.Duration
	readTimeout     time.Duration
	writeTimeout    time.Duration
	idleTimeout     time.Duration
	shutdownTimeout time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "path to the graph file (required)")
	flag.StringVar(&cfg.indexPath, "index", "", "prebuilt index file (icindex output); serves queries index-first when set")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.BoolVar(&cfg.usePagerank, "pagerank", false, "replace vertex weights with PageRank scores")
	flag.Func("dataset", "additional dataset: name=path[,backend=semiext][,index=file] (repeatable)", func(spec string) error {
		d, err := parseDatasetSpec(spec)
		if err != nil {
			return err
		}
		cfg.datasets = append(cfg.datasets, d)
		return nil
	})
	flag.IntVar(&cfg.cacheSize, "cache", 256, "query-result cache entries (0 disables)")
	flag.StringVar(&cfg.adminToken, "admin-token", "", "bearer token required on /v1/admin endpoints (empty = open; keep the port private)")
	flag.IntVar(&cfg.maxK, "maxk", 10000, "largest k a single request may ask for")
	flag.IntVar(&cfg.maxInFlight, "max-inflight", 0, "concurrent query limit, 503 beyond it (0 = 4×GOMAXPROCS, -1 = unlimited)")
	flag.DurationVar(&cfg.queryTimeout, "query-timeout", 30*time.Second, "per-request search deadline (0 = none)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 60*time.Second, "HTTP write timeout")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 15*time.Second, "graceful shutdown drain limit")
	flag.Parse()
	if cfg.graphPath == "" {
		fmt.Fprintln(os.Stderr, "icserver: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, nil); err != nil {
		log.Fatalf("icserver: %v", err)
	}
}

// serve loads the graph and runs the HTTP server until ctx is cancelled,
// then drains gracefully. When ready is non-nil the bound listener address
// is sent on it once the server is accepting connections (used by tests to
// serve on an ephemeral port).
func serve(ctx context.Context, cfg config, ready chan<- string) error {
	g, err := influcomm.LoadGraph(cfg.graphPath)
	if err != nil {
		return err
	}
	if cfg.usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			return err
		}
	}
	opts := []server.Option{
		server.WithMaxK(cfg.maxK),
		server.WithQueryTimeout(cfg.queryTimeout),
		server.WithResultCache(cfg.cacheSize),
	}
	if cfg.adminToken != "" {
		opts = append(opts, server.WithAdminToken(cfg.adminToken))
	}
	if cfg.indexPath != "" {
		ix, err := influcomm.LoadIndex(cfg.indexPath, g)
		if err != nil {
			return fmt.Errorf("loading index: %w", err)
		}
		log.Printf("icserver: index loaded from %s (γmax %d, %d int32 slots), serving index-first", cfg.indexPath, ix.GammaMax(), ix.MemoryFootprint())
		opts = append(opts, server.WithIndex(ix))
	}
	if cfg.maxInFlight != 0 {
		opts = append(opts, server.WithMaxInFlight(cfg.maxInFlight))
	}
	for _, d := range cfg.datasets {
		st, err := influcomm.OpenStore(d.path, d.backend)
		if err != nil {
			return fmt.Errorf("dataset %s: %w", d.name, err)
		}
		cfgDS := server.DatasetConfig{Store: st}
		if d.index != "" {
			dg := st.Graph()
			if dg == nil {
				return fmt.Errorf("dataset %s: an index needs the memory backend", d.name)
			}
			ix, err := influcomm.LoadIndex(d.index, dg)
			if err != nil {
				return fmt.Errorf("dataset %s: loading index: %w", d.name, err)
			}
			cfgDS.Index = ix
		}
		opts = append(opts, server.WithDataset(d.name, cfgDS))
		log.Printf("icserver: dataset %s: %d vertices, %d edges via %s backend from %s",
			d.name, st.NumVertices(), st.NumEdges(), st.Backend(), d.path)
	}
	h, err := server.New(g, opts...)
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           h,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("icserver: serving %d vertices, %d edges on %s", g.NumVertices(), g.NumEdges(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("icserver: shutting down, draining for up to %s", cfg.shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
