// Command icindex builds serving artifacts for a graph: the IndexAll
// structure (-out), so a server (icserver -index) can answer any (k, γ)
// query in output-proportional time instead of searching online, and/or a
// semi-external edge file (-edges), so a server can serve the graph with
// only per-vertex state in memory (icserver -dataset
// name=g.edges,backend=semiext).
//
// Usage:
//
//	icindex -graph g.txt [-out g.icx] [-edges g.edges] [-format v1|v2]
//	        [-pagerank] [-workers N] [-timeout 0] [-verify]
//	icindex -compact g.edges
//	icindex -recode in.edges [-edges out.edges] [-format v1|v2]
//	icindex -graph g.txt -partition N [-pagerank]   (writes g.txt.shardI.bin)
//
// -compact folds a mutable dataset's write-ahead update log (g.edges.log,
// left behind by an icserver that exited uncleanly) back into its edge
// file offline: the log is replayed, the edge file rewritten atomically,
// and the log removed — the maintenance step a clean server shutdown
// performs automatically. It runs alone, without -graph.
//
// -recode rewrites an existing edge file into the layout -format selects —
// v1 (flat 4-byte adjacency) or v2 (delta-gap + varint compressed,
// typically ~3x smaller on clustered graphs) — writing to -edges, or back
// over the input atomically when -edges is omitted. Either layout serves
// identically; recoding never changes query results, only bytes on disk.
// It runs alone, without -graph. -format likewise selects the layout
// -edges writes in the build mode (default v1).
//
// -partition splits the graph into up to N component-closed shard graphs,
// written next to the input as g.txt.shard0.bin, g.txt.shard1.bin, ... in
// the binary graph format (which, unlike the text format, preserves sparse
// original IDs exactly) — the offline step that feeds a scatter-gather
// cluster (one icserver per shard file behind an iccoord; see
// docs/CLUSTER.md). With -pagerank the *global* PageRank scores are baked
// into the shard files first; do not pass -pagerank to the shard servers in
// that case, or they would recompute per-shard scores and break parity with
// a single node.
//
// Otherwise at least one of -out and -edges is required. The index is bound to the
// exact graph and weight vector it was built from: pass the same graph
// file (and the same -pagerank setting) to icserver, and rebuild the
// index whenever the graph changes. Construction fans the independent
// per-γ decompositions out over -workers goroutines (default: all cores);
// -verify reloads the written file and spot-checks it against an online
// query before reporting success. Both artifacts are written atomically
// (temporary file plus rename).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"influcomm"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

type config struct {
	graphPath   string
	outPath     string
	edgesPath   string
	compactPath string
	recodePath  string
	partition   int
	format      string
	usePagerank bool
	workers     int
	timeout     time.Duration
	verify      bool
}

// parseFormat maps the -format flag to an edge-file format constant.
func parseFormat(s string) (int, error) {
	switch s {
	case "", "v1":
		return influcomm.EdgeFileV1, nil
	case "v2":
		return influcomm.EdgeFileV2, nil
	default:
		return 0, fmt.Errorf("bad -format %q (want v1 or v2)", s)
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.graphPath, "graph", "", "path to the graph file (required)")
	flag.StringVar(&cfg.outPath, "out", "", "path to write the index to")
	flag.StringVar(&cfg.edgesPath, "edges", "", "path to write a semi-external edge file to")
	flag.StringVar(&cfg.compactPath, "compact", "", "compact a mutable dataset's update log back into this edge file, then exit")
	flag.StringVar(&cfg.recodePath, "recode", "", "rewrite this edge file into the -format layout (to -edges, or in place), then exit")
	flag.IntVar(&cfg.partition, "partition", 0, "split -graph into up to N component-closed shard graphs (<graph>.shardI.bin), then exit")
	flag.StringVar(&cfg.format, "format", "", "edge-file layout to write: v1 (flat, default) or v2 (delta+varint compressed)")
	flag.BoolVar(&cfg.usePagerank, "pagerank", false, "replace vertex weights with PageRank scores before building (use the same flag on icserver)")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel build workers (0 = all cores, 1 = sequential)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the build after this long (0 = no limit)")
	flag.BoolVar(&cfg.verify, "verify", false, "reload the written index and spot-check it against an online query")
	flag.Parse()
	if cfg.compactPath != "" {
		if err := compact(cfg.compactPath, log.Printf); err != nil {
			log.Fatalf("icindex: %v", err)
		}
		return
	}
	if cfg.recodePath != "" {
		if err := recode(cfg, log.Printf); err != nil {
			log.Fatalf("icindex: %v", err)
		}
		return
	}
	if cfg.partition > 0 {
		if cfg.graphPath == "" {
			fmt.Fprintln(os.Stderr, "icindex: -partition requires -graph")
			flag.Usage()
			os.Exit(2)
		}
		if err := partitionCmd(cfg, log.Printf); err != nil {
			log.Fatalf("icindex: %v", err)
		}
		return
	}
	if cfg.graphPath == "" || (cfg.outPath == "" && cfg.edgesPath == "") {
		fmt.Fprintln(os.Stderr, "icindex: -graph and at least one of -out / -edges are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(context.Background(), cfg, log.Printf); err != nil {
		log.Fatalf("icindex: %v", err)
	}
}

// compact replays the write-ahead update log of the edge file at path and
// folds it back into the file; opening the mutable store does the replay,
// closing it cleanly does the compaction.
func compact(path string, logf func(string, ...any)) error {
	st, err := influcomm.OpenMutableStore(path)
	if err != nil {
		return err
	}
	applied := st.UpdatesApplied()
	if err := st.Close(); err != nil {
		return fmt.Errorf("compacting %s: %w", path, err)
	}
	logf("icindex: compacted %s: %d logged updates folded in (%d vertices, %d edges)",
		path, applied, st.NumVertices(), st.NumEdges())
	return nil
}

// recode reads the edge file at cfg.recodePath in full — the bulk prefix
// decode splits across -workers goroutines — and rewrites it atomically in
// the layout -format selects, to -edges or over the input. Both layouts
// round-trip losslessly, so v1→v2→v1 reproduces the original bytes.
func recode(cfg config, logf func(string, ...any)) error {
	format, err := parseFormat(cfg.format)
	if err != nil {
		return err
	}
	outPath := cfg.edgesPath
	if outPath == "" {
		outPath = cfg.recodePath
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	v, err := semiext.OpenView(cfg.recodePath)
	if err != nil {
		return err
	}
	defer v.Close()
	adj, err := v.AdjPrefix(v.NumVertices(), v.NumEdges(), workers, nil)
	if err != nil {
		return fmt.Errorf("decoding %s: %w", cfg.recodePath, err)
	}
	g, err := graph.FromUpAdjacency(v.Weights(), v.UpDegrees(), adj, nil)
	if err != nil {
		return fmt.Errorf("rebuilding graph from %s: %w", cfg.recodePath, err)
	}
	inSize := int64(0)
	if info, err := os.Stat(cfg.recodePath); err == nil {
		inSize = info.Size()
	}
	if err := semiext.WriteEdgeFileFormat(outPath, g, format); err != nil {
		return fmt.Errorf("writing %s: %w", outPath, err)
	}
	info, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	logf("icindex: recoded %s (v%d, %d bytes) -> %s (v%d, %d bytes): %d vertices, %d edges",
		cfg.recodePath, v.Format(), inSize, outPath, format, info.Size(), g.NumVertices(), g.NumEdges())
	return nil
}

// partitionCmd splits the graph into component-closed shard graphs and
// writes each as <graph>.shardI.bin — the binary format, because shard
// vertex sets have gaps in the original-ID space and only the binary layout
// stores original IDs explicitly (the text format would materialize the
// gaps as phantom weight-0 vertices). With -pagerank the global scores are
// baked in before the split, since per-shard PageRank would not match the
// global ranking.
func partitionCmd(cfg config, logf func(string, ...any)) error {
	g, err := influcomm.LoadGraph(cfg.graphPath)
	if err != nil {
		return err
	}
	if cfg.usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			return err
		}
	}
	shards, err := influcomm.PartitionGraph(g, cfg.partition)
	if err != nil {
		return err
	}
	for i, sg := range shards {
		path := fmt.Sprintf("%s.shard%d.bin", cfg.graphPath, i)
		if err := influcomm.SaveGraph(path, sg); err != nil {
			return fmt.Errorf("writing shard %d: %w", i, err)
		}
		logf("icindex: shard %d: %d vertices, %d edges at %s",
			i, sg.NumVertices(), sg.NumEdges(), path)
	}
	if len(shards) < cfg.partition {
		logf("icindex: graph has only enough components for %d of %d shards",
			len(shards), cfg.partition)
	}
	return nil
}

// run loads the graph, builds and persists the index, and optionally
// verifies the written file; logf receives progress lines.
func run(ctx context.Context, cfg config, logf func(string, ...any)) error {
	g, err := influcomm.LoadGraph(cfg.graphPath)
	if err != nil {
		return err
	}
	if cfg.usePagerank {
		if g, err = influcomm.PageRankWeights(g); err != nil {
			return err
		}
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	if cfg.edgesPath != "" {
		format, err := parseFormat(cfg.format)
		if err != nil {
			return err
		}
		if err := influcomm.SaveEdgeFileFormat(cfg.edgesPath, g, format); err != nil {
			return fmt.Errorf("writing edge file: %w", err)
		}
		info, err := os.Stat(cfg.edgesPath)
		if err != nil {
			return err
		}
		logf("icindex: %d vertices, %d edges -> semi-external edge file (v%d), %d bytes at %s",
			g.NumVertices(), g.NumEdges(), format, info.Size(), cfg.edgesPath)
	}
	if cfg.outPath == "" {
		return nil
	}

	start := time.Now()
	ix, err := influcomm.BuildIndexContext(ctx, g, cfg.workers)
	if err != nil {
		return fmt.Errorf("building index: %w", err)
	}
	buildTime := time.Since(start)
	if err := influcomm.SaveIndex(cfg.outPath, ix); err != nil {
		return err
	}
	info, err := os.Stat(cfg.outPath)
	if err != nil {
		return err
	}
	logf("icindex: %d vertices, %d edges -> γmax %d, %d int32 slots, built in %s, %d bytes at %s",
		g.NumVertices(), g.NumEdges(), ix.GammaMax(), ix.MemoryFootprint(), buildTime.Round(time.Millisecond), info.Size(), cfg.outPath)

	if cfg.verify {
		loaded, err := influcomm.LoadIndex(cfg.outPath, g)
		if err != nil {
			return fmt.Errorf("verify: reloading: %w", err)
		}
		gamma := int(loaded.GammaMax())
		if gamma > 3 {
			gamma = 3
		}
		if gamma >= 1 {
			online, err := influcomm.TopK(g, 5, gamma)
			if err != nil {
				return fmt.Errorf("verify: online query: %w", err)
			}
			served, err := loaded.TopK(5, int32(gamma))
			if err != nil {
				return fmt.Errorf("verify: index query: %w", err)
			}
			if len(served) != len(online.Communities) {
				return fmt.Errorf("verify: index served %d communities for (k=5, γ=%d), online search found %d",
					len(served), gamma, len(online.Communities))
			}
			for i := range served {
				if served[i].Influence() != online.Communities[i].Influence() {
					return fmt.Errorf("verify: community %d influence %v from index, %v online",
						i, served[i].Influence(), online.Communities[i].Influence())
				}
			}
		}
		logf("icindex: verify ok (round-tripped and matched online answers)")
	}
	return nil
}
