package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"influcomm"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildPersistServe(t *testing.T) {
	graphPath := writeFixture(t)
	outPath := filepath.Join(t.TempDir(), "g.icx")
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, format) }
	cfg := config{graphPath: graphPath, outPath: outPath, workers: 2, verify: true}
	if err := run(context.Background(), cfg, logf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(logs) != 2 || !strings.Contains(logs[1], "verify ok") {
		t.Errorf("logs = %q, want build line plus verify line", logs)
	}

	// The written file serves identical answers through the public API.
	g, err := influcomm.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := influcomm.LoadIndex(outPath, g)
	if err != nil {
		t.Fatal(err)
	}
	online, err := influcomm.TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	served, err := ix.TopK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(online.Communities) {
		t.Fatalf("index served %d communities, online %d", len(served), len(online.Communities))
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	logf := func(string, ...any) {}
	if err := run(context.Background(), config{graphPath: filepath.Join(dir, "missing.txt"), outPath: filepath.Join(dir, "o.icx")}, logf); err == nil {
		t.Error("missing graph: want error")
	}
	graphPath := writeFixture(t)
	if err := run(context.Background(), config{graphPath: graphPath, outPath: filepath.Join(dir, "nosuchdir", "o.icx")}, logf); err == nil {
		t.Error("unwritable output path: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, config{graphPath: graphPath, outPath: filepath.Join(dir, "o.icx"), timeout: time.Minute}, logf); err == nil {
		t.Error("cancelled context: want error")
	}
}
