package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"influcomm"
	"influcomm/internal/semiext"
)

func writeFixture(t *testing.T) string {
	t.Helper()
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildPersistServe(t *testing.T) {
	graphPath := writeFixture(t)
	outPath := filepath.Join(t.TempDir(), "g.icx")
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, format) }
	cfg := config{graphPath: graphPath, outPath: outPath, workers: 2, verify: true}
	if err := run(context.Background(), cfg, logf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(logs) != 2 || !strings.Contains(logs[1], "verify ok") {
		t.Errorf("logs = %q, want build line plus verify line", logs)
	}

	// The written file serves identical answers through the public API.
	g, err := influcomm.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := influcomm.LoadIndex(outPath, g)
	if err != nil {
		t.Fatal(err)
	}
	online, err := influcomm.TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	served, err := ix.TopK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(online.Communities) {
		t.Fatalf("index served %d communities, online %d", len(served), len(online.Communities))
	}
}

// TestEdgesArtifact: -edges writes a semi-external edge file that serves
// the same answers as the in-memory graph, with or without -out.
func TestEdgesArtifact(t *testing.T) {
	graphPath := writeFixture(t)
	dir := t.TempDir()
	edgesPath := filepath.Join(dir, "g.edges")
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, format) }
	cfg := config{graphPath: graphPath, edgesPath: edgesPath}
	if err := run(context.Background(), cfg, logf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(logs) != 1 || !strings.Contains(logs[0], "edge file") {
		t.Errorf("logs = %q, want one edge-file line (no index build without -out)", logs)
	}

	g, err := influcomm.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := influcomm.OpenEdgeFileStore(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.NumVertices() != g.NumVertices() || st.NumEdges() != g.NumEdges() {
		t.Fatalf("edge file shape (%d,%d), want (%d,%d)",
			st.NumVertices(), st.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	online, err := influcomm.TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	served, err := st.TopK(context.Background(), 2, 3, influcomm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(served.Communities) != len(online.Communities) {
		t.Fatalf("edge file served %d communities, online %d", len(served.Communities), len(online.Communities))
	}
	for i := range served.Communities {
		if served.Communities[i].Influence() != online.Communities[i].Influence() {
			t.Errorf("community %d: influence %v from edge file, %v online",
				i, served.Communities[i].Influence(), online.Communities[i].Influence())
		}
	}

	// Both artifacts in one invocation.
	logs = nil
	cfg = config{graphPath: graphPath, outPath: filepath.Join(dir, "g.icx"), edgesPath: filepath.Join(dir, "g2.edges")}
	if err := run(context.Background(), cfg, logf); err != nil {
		t.Fatalf("run with both artifacts: %v", err)
	}
	if len(logs) != 2 {
		t.Errorf("logs = %q, want edge-file line plus index line", logs)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	logf := func(string, ...any) {}
	if err := run(context.Background(), config{graphPath: filepath.Join(dir, "missing.txt"), outPath: filepath.Join(dir, "o.icx")}, logf); err == nil {
		t.Error("missing graph: want error")
	}
	graphPath := writeFixture(t)
	if err := run(context.Background(), config{graphPath: graphPath, outPath: filepath.Join(dir, "nosuchdir", "o.icx")}, logf); err == nil {
		t.Error("unwritable output path: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, config{graphPath: graphPath, outPath: filepath.Join(dir, "o.icx"), timeout: time.Minute}, logf); err == nil {
		t.Error("cancelled context: want error")
	}
}

// TestCompact folds a write-ahead update log back into its edge file: the
// offline equivalent of a clean server shutdown.
func TestCompact(t *testing.T) {
	graphPath := writeFixture(t)
	edgesPath := filepath.Join(t.TempDir(), "g.edges")
	cfg := config{graphPath: graphPath, edgesPath: edgesPath}
	if err := run(context.Background(), cfg, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}

	// Leave a pending log behind, as a crashed server would.
	st, err := influcomm.OpenMutableStore(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	baseEdges := st.NumEdges()
	if _, err := influcomm.Apply(context.Background(), st, []influcomm.EdgeUpdate{{U: 0, V: 4, Delete: false}}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the crash (Abandon releases the log's lock
	// without compacting, as process death would).
	if err := st.(interface{ Abandon() error }).Abandon(); err != nil {
		t.Fatal(err)
	}

	var logs []string
	if err := compact(edgesPath, func(f string, a ...any) { logs = append(logs, f) }); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if len(logs) != 1 {
		t.Fatalf("logs = %q", logs)
	}
	if _, err := os.Stat(edgesPath + ".log"); !os.IsNotExist(err) {
		t.Fatalf("log survived compaction: %v", err)
	}
	re, err := influcomm.OpenMutableStore(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumEdges() != baseEdges+1 || re.UpdatesApplied() != 0 {
		t.Fatalf("compacted file has %d edges (%d replayed), want %d and 0",
			re.NumEdges(), re.UpdatesApplied(), baseEdges+1)
	}
}

// TestRecodeRoundTrip: -recode rewrites between layouts losslessly —
// v1→v2 produces a smaller file with identical answers, v2→v1 restores the
// original bytes exactly, and in-place recoding (no -edges) works too.
func TestRecodeRoundTrip(t *testing.T) {
	graphPath := writeFixture(t)
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "g.edges")
	logf := func(string, ...any) {}
	if err := run(context.Background(), config{graphPath: graphPath, edgesPath: v1Path}, logf); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}

	v2Path := filepath.Join(dir, "g.v2.edges")
	if err := recode(config{recodePath: v1Path, edgesPath: v2Path, format: "v2"}, logf); err != nil {
		t.Fatalf("recode v1->v2: %v", err)
	}
	backPath := filepath.Join(dir, "g.back.edges")
	if err := recode(config{recodePath: v2Path, edgesPath: backPath, format: "v1"}, logf); err != nil {
		t.Fatalf("recode v2->v1: %v", err)
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(orig) {
		t.Fatal("v1->v2->v1 round trip is not byte-identical")
	}

	// The v2 file serves the same answers as the original.
	g, err := influcomm.LoadGraph(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := influcomm.OpenEdgeFileStore(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	online, err := influcomm.TopK(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	served, err := st.TopK(context.Background(), 3, 2, influcomm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(served.Communities) != len(online.Communities) {
		t.Fatalf("v2 file served %d communities, online %d", len(served.Communities), len(online.Communities))
	}
	for i := range served.Communities {
		if served.Communities[i].Influence() != online.Communities[i].Influence() {
			t.Errorf("community %d: influence %v from v2 file, %v online",
				i, served.Communities[i].Influence(), online.Communities[i].Influence())
		}
	}

	// In-place: recoding v1Path itself to v2 leaves a v2 file that recodes
	// back to the original bytes.
	if err := recode(config{recodePath: v1Path, format: "v2"}, logf); err != nil {
		t.Fatalf("in-place recode: %v", err)
	}
	if err := recode(config{recodePath: v1Path, format: "v1"}, logf); err != nil {
		t.Fatalf("in-place recode back: %v", err)
	}
	inPlace, err := os.ReadFile(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if string(inPlace) != string(orig) {
		t.Fatal("in-place v1->v2->v1 round trip is not byte-identical")
	}

	// A bad -format is an error, not a silent v1.
	if err := recode(config{recodePath: v1Path, format: "v3"}, logf); err == nil {
		t.Error("format v3: want error")
	}
}

// TestPartition: -partition writes component-closed shard graph files that
// together cover the input and each reload cleanly.
func TestPartition(t *testing.T) {
	// Two triangles and a pendant pair: three components.
	var b influcomm.Builder
	for id := int32(0); id < 8; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
		{6, 7},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	graphPath := filepath.Join(t.TempDir(), "g.txt")
	if err := influcomm.SaveGraph(graphPath, g); err != nil {
		t.Fatal(err)
	}

	var logs []string
	logf := func(f string, a ...any) { logs = append(logs, f) }
	if err := partitionCmd(config{graphPath: graphPath, partition: 2}, logf); err != nil {
		t.Fatalf("partitionCmd: %v", err)
	}
	if len(logs) != 2 {
		t.Fatalf("logs = %q, want one line per shard", logs)
	}
	total := int64(0)
	totalEdges := int64(0)
	for i := 0; i < 2; i++ {
		sg, err := influcomm.LoadGraph(fmt.Sprintf("%s.shard%d.bin", graphPath, i))
		if err != nil {
			t.Fatalf("reloading shard %d: %v", i, err)
		}
		total += int64(sg.NumVertices())
		totalEdges += sg.NumEdges()
	}
	if total != int64(g.NumVertices()) || totalEdges != g.NumEdges() {
		t.Fatalf("shards cover %d vertices / %d edges, want %d / %d",
			total, totalEdges, g.NumVertices(), g.NumEdges())
	}

	// A single-component graph cannot be split beyond one shard.
	onePath := writeFixture(t)
	logs = nil
	if err := partitionCmd(config{graphPath: onePath, partition: 3}, logf); err != nil {
		t.Fatalf("partitionCmd on connected graph: %v", err)
	}
	if len(logs) != 2 || !strings.Contains(logs[1], "components") {
		t.Fatalf("logs = %q, want one shard line plus a short-fall notice", logs)
	}
	if err := partitionCmd(config{graphPath: filepath.Join(t.TempDir(), "missing.txt"), partition: 2}, logf); err == nil {
		t.Error("missing graph: want error")
	}
}

// TestEdgesFormatV2: -format v2 in build mode writes a compressed edge
// file that the semi-external store detects and serves.
func TestEdgesFormatV2(t *testing.T) {
	graphPath := writeFixture(t)
	edgesPath := filepath.Join(t.TempDir(), "g.edges")
	var logs []string
	logf := func(f string, a ...any) { logs = append(logs, f) }
	cfg := config{graphPath: graphPath, edgesPath: edgesPath, format: "v2"}
	if err := run(context.Background(), cfg, logf); err != nil {
		t.Fatal(err)
	}
	v, err := semiext.OpenView(edgesPath)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.Format() != semiext.FormatV2 {
		t.Fatalf("written format v%d, want v2", v.Format())
	}
	if err := run(context.Background(), config{graphPath: graphPath, edgesPath: edgesPath, format: "bogus"}, logf); err == nil {
		t.Error("bogus format: want error")
	}
}
