// Command icdoccheck keeps the documentation honest in CI. It has two
// checks, combinable in one invocation:
//
//	icdoccheck [-godoc dir]... [-md path]...
//
// -godoc parses the Go package in dir and fails if any exported top-level
// symbol — type, function, method on an exported type, const, or var —
// lacks a doc comment (a doc comment on a grouped declaration covers the
// group). It is the enforcement behind the "every exported symbol is
// documented" rule on the public API.
//
// -md scans a markdown file (or every .md file under a directory) and
// fails on relative links whose targets do not exist on disk, so README
// and docs/ cannot silently rot as files move. External (http, https,
// mailto) and pure-anchor links are skipped; a "path#anchor" link checks
// only the path.
//
// Exits 0 when every check passes, 1 with one line per finding otherwise.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	var godocDirs, mdPaths []string
	flag.Func("godoc", "package directory whose exported symbols must all carry doc comments (repeatable)", func(s string) error {
		godocDirs = append(godocDirs, s)
		return nil
	})
	flag.Func("md", "markdown file or directory tree whose relative links must resolve (repeatable)", func(s string) error {
		mdPaths = append(mdPaths, s)
		return nil
	})
	flag.Parse()
	if len(godocDirs) == 0 && len(mdPaths) == 0 {
		fmt.Fprintln(os.Stderr, "icdoccheck: nothing to do; pass -godoc and/or -md")
		flag.Usage()
		os.Exit(2)
	}
	var findings []string
	for _, dir := range godocDirs {
		fs, err := checkGodoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icdoccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, path := range mdPaths {
		fs, err := checkMarkdown(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icdoccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "icdoccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkGodoc parses the package in dir (tests excluded) and reports every
// exported symbol without a doc comment.
func checkGodoc(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil {
						recv := receiverName(d.Recv)
						if recv == "" || !ast.IsExported(recv) {
							continue
						}
						report(d.Pos(), "method", recv+"."+d.Name.Name)
						continue
					}
					report(d.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
					if kind == "" {
						continue
					}
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
								report(sp.Pos(), kind, sp.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc comment on the group covers its members.
							if sp.Doc != nil || d.Doc != nil {
								continue
							}
							for _, name := range sp.Names {
								if name.IsExported() {
									report(name.Pos(), kind, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return findings, nil
}

// receiverName extracts the base type name of a method receiver.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// mdLink matches inline markdown links [text](target); images share the
// syntax with a leading bang, which the pattern also accepts.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown checks every relative link in path (a .md file, or every
// .md file under a directory) against the filesystem.
func checkMarkdown(path string) ([]string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var files []string
	if fi.IsDir() {
		err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{path}
	}
	var findings []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", f, lineNo+1, m[1]))
				}
			}
		}
	}
	return findings, nil
}
