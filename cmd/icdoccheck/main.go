// Command icdoccheck keeps the documentation honest in CI. It has three
// checks, combinable in one invocation:
//
//	icdoccheck [-godoc dir]... [-md path]... [-flags dir]... [-flagdocs path]...
//
// -godoc parses the Go package in dir and fails if any exported top-level
// symbol — type, function, method on an exported type, const, or var —
// lacks a doc comment (a doc comment on a grouped declaration covers the
// group). It is the enforcement behind the "every exported symbol is
// documented" rule on the public API.
//
// -md scans a markdown file (or every .md file under a directory) and
// fails on relative links whose targets do not exist on disk, so README
// and docs/ cannot silently rot as files move. External (http, https,
// mailto) and pure-anchor links are skipped; a "path#anchor" link checks
// only the path.
//
// -flags parses every Go command under dir (each subdirectory holding a
// package, or dir itself), extracts the flag names its source registers via
// the standard flag package, and fails unless each name appears — spelled
// -name — in at least one -flagdocs markdown file (or directory of .md
// files). It is the enforcement behind "docs/OPERATIONS.md documents every
// CLI flag": adding a flag without documenting it breaks the docs CI job.
//
// Exits 0 when every check passes, 1 with one line per finding otherwise.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var godocDirs, mdPaths []string
	flag.Func("godoc", "package directory whose exported symbols must all carry doc comments (repeatable)", func(s string) error {
		godocDirs = append(godocDirs, s)
		return nil
	})
	flag.Func("md", "markdown file or directory tree whose relative links must resolve (repeatable)", func(s string) error {
		mdPaths = append(mdPaths, s)
		return nil
	})
	var flagDirs, flagDocs []string
	flag.Func("flags", "command directory (or tree of commands) whose registered CLI flags must all be documented (repeatable)", func(s string) error {
		flagDirs = append(flagDirs, s)
		return nil
	})
	flag.Func("flagdocs", "markdown file or directory searched for -flag mentions (repeatable; used with -flags)", func(s string) error {
		flagDocs = append(flagDocs, s)
		return nil
	})
	flag.Parse()
	if len(godocDirs) == 0 && len(mdPaths) == 0 && len(flagDirs) == 0 {
		fmt.Fprintln(os.Stderr, "icdoccheck: nothing to do; pass -godoc, -md, and/or -flags")
		flag.Usage()
		os.Exit(2)
	}
	if len(flagDirs) > 0 && len(flagDocs) == 0 {
		fmt.Fprintln(os.Stderr, "icdoccheck: -flags needs at least one -flagdocs to search")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range godocDirs {
		fs, err := checkGodoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icdoccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, path := range mdPaths {
		fs, err := checkMarkdown(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icdoccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(flagDirs) > 0 {
		fs, err := checkFlagDocs(flagDirs, flagDocs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icdoccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "icdoccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// checkGodoc parses the package in dir (tests excluded) and reports every
// exported symbol without a doc comment.
func checkGodoc(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil {
						recv := receiverName(d.Recv)
						if recv == "" || !ast.IsExported(recv) {
							continue
						}
						report(d.Pos(), "method", recv+"."+d.Name.Name)
						continue
					}
					report(d.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
					if kind == "" {
						continue
					}
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
								report(sp.Pos(), kind, sp.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc comment on the group covers its members.
							if sp.Doc != nil || d.Doc != nil {
								continue
							}
							for _, name := range sp.Names {
								if name.IsExported() {
									report(name.Pos(), kind, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return findings, nil
}

// receiverName extracts the base type name of a method receiver.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// flagNameArg maps each flag-registration function of the standard flag
// package to the index of its name argument: 0 for the value-returning forms
// (flag.String, flag.Int, ...; also FlagSet methods), 1 for the *Var forms
// and flag.Func, where the first argument is the destination.
var flagNameArg = map[string]int{
	"Bool": 0, "Int": 0, "Int64": 0, "Uint": 0, "Uint64": 0,
	"String": 0, "Float64": 0, "Duration": 0, "TextVar": 1,
	"BoolVar": 1, "IntVar": 1, "Int64Var": 1, "UintVar": 1, "Uint64Var": 1,
	"StringVar": 1, "Float64Var": 1, "DurationVar": 1, "Var": 1,
	"Func": 0, "BoolFunc": 0,
}

// commandDirs expands dir into the directories under it (dir included) that
// contain non-test Go files.
func commandDirs(dir string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// extractFlags parses the package in dir (tests excluded) and returns the
// names of every flag it registers through the standard flag package,
// sorted. Only string-literal names count; a computed name cannot be
// checked against the docs and is reported as an error.
func extractFlags(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", dir, err)
	}
	seen := map[string]bool{}
	var names []string
	var walkErr error
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// flag.XxxVar(...) or any FlagSet method of the same name;
				// either way the registration shape is identical.
				idx, ok := flagNameArg[sel.Sel.Name]
				if !ok || len(call.Args) <= idx {
					return true
				}
				if id, isID := sel.X.(*ast.Ident); !isID || id.Name != "flag" {
					return true
				}
				lit, ok := call.Args[idx].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					p := fset.Position(call.Pos())
					walkErr = fmt.Errorf("%s:%d: flag name is not a string literal", p.Filename, p.Line)
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || name == "" {
					return true
				}
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
				return true
			})
		}
	}
	if walkErr != nil {
		return nil, walkErr
	}
	sort.Strings(names)
	return names, nil
}

// collectMarkdown expands each path into its .md files (a file is taken as
// is) and concatenates their contents.
func collectMarkdown(paths []string) (string, error) {
	var sb strings.Builder
	for _, path := range paths {
		fi, err := os.Stat(path)
		if err != nil {
			return "", err
		}
		files := []string{path}
		if fi.IsDir() {
			files = files[:0]
			err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && strings.HasSuffix(p, ".md") {
					files = append(files, p)
				}
				return nil
			})
			if err != nil {
				return "", err
			}
		}
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return "", err
			}
			sb.Write(data)
			sb.WriteByte('\n')
		}
	}
	return sb.String(), nil
}

// checkFlagDocs verifies that every flag registered by the commands under
// flagDirs is mentioned, spelled -name, somewhere in the flagDocs markdown.
func checkFlagDocs(flagDirs, flagDocs []string) ([]string, error) {
	docs, err := collectMarkdown(flagDocs)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, root := range flagDirs {
		dirs, err := commandDirs(root)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			names, err := extractFlags(dir)
			if err != nil {
				return nil, err
			}
			for _, name := range names {
				// The flag must appear as "-name" with nothing word-like or a
				// second dash glued to the front, and the name ending at a
				// word boundary — prose mentions and `-name` code spans both
				// match, substrings of longer flags do not.
				re := regexp.MustCompile(`(^|[^-\w])-` + regexp.QuoteMeta(name) + `\b`)
				if !re.MatchString(docs) {
					findings = append(findings, fmt.Sprintf("%s: flag -%s is not documented in %s",
						dir, name, strings.Join(flagDocs, ", ")))
				}
			}
		}
	}
	return findings, nil
}

// mdLink matches inline markdown links [text](target); images share the
// syntax with a leading bang, which the pattern also accepts.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdown checks every relative link in path (a .md file, or every
// .md file under a directory) against the filesystem.
func checkMarkdown(path string) ([]string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var files []string
	if fi.IsDir() {
		err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{path}
	}
	var findings []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				target, _, _ = strings.Cut(target, "#")
				resolved := filepath.Join(filepath.Dir(f), target)
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", f, lineNo+1, m[1]))
				}
			}
		}
	}
	return findings, nil
}
