package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckGodoc(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "a.go", `package demo

// Documented has a doc comment.
type Documented struct{}

// Method is documented.
func (Documented) Method() {}

func (Documented) Naked() {}

type Undocumented int

// Grouped constants share the group's doc comment.
const (
	A = 1
	B = 2
)

var NoDoc = 3

func internalHelper() {} // unexported: exempt

type hidden struct{}

func (hidden) Exported() {} // method on unexported type: exempt
`)
	findings, err := checkGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f[strings.Index(f, "exported"):])
	}
	want := []string{
		"exported method Documented.Naked has no doc comment",
		"exported type Undocumented has no doc comment",
		"exported var NoDoc has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCheckGodocRepoRoot runs the real check against the repository's
// public package, making the godoc-pass guarantee itself a test.
func TestCheckGodocRepoRoot(t *testing.T) {
	findings, err := checkGodoc("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

func TestExtractFlags(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "tool/main.go", `package main

import (
	"flag"
	"time"
)

func main() {
	var s string
	var d time.Duration
	flag.StringVar(&s, "graph", "", "usage")
	flag.DurationVar(&d, "query-timeout", 0, "usage")
	n := flag.Int("maxk", 10, "usage")
	flag.Func("dataset", "usage", func(string) error { return nil })
	_ = n
	flag.Parse()
}
`)
	names, err := extractFlags(filepath.Join(dir, "tool"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"dataset", "graph", "maxk", "query-timeout"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("flags = %v, want %v", names, want)
	}
}

func TestCheckFlagDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "cmd/tool/main.go", `package main

import "flag"

func main() {
	flag.String("documented", "", "usage")
	flag.String("missing", "", "usage")
	flag.String("addr", "", "usage")
	flag.Parse()
}
`)
	write(t, dir, "docs/OPS.md", strings.Join([]string{
		"Run with `-documented value`.",
		"The word pre-addr must not count as documenting -ad... nothing.",
		"And --missing (GNU spelling) should still count? No: double dash",
		"means the regex sees a dash before the dash, so it must NOT match.",
		"`-addr :8080` sets the listen address.",
	}, "\n"))
	findings, err := checkFlagDocs([]string{filepath.Join(dir, "cmd")}, []string{filepath.Join(dir, "docs")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "flag -missing") {
		t.Fatalf("findings = %q, want exactly the -missing flag", findings)
	}
}

// TestCheckFlagDocsRepo runs the real check against the repository's own
// commands and documentation, making the flag-coverage guarantee a test.
func TestCheckFlagDocsRepo(t *testing.T) {
	findings, err := checkFlagDocs([]string{".."}, []string{"../../README.md", "../../docs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "docs/real.md", "# target")
	write(t, dir, "README.md", strings.Join([]string{
		"[good](docs/real.md)",
		"[anchored](docs/real.md#section)",
		"[external](https://example.com/nope) [mail](mailto:a@b.c) [frag](#local)",
		"[broken](docs/missing.md)",
		"![img](missing.png)",
	}, "\n"))
	findings, err := checkMarkdown(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %q, want the two broken links", findings)
	}
	if !strings.Contains(findings[0], "docs/missing.md") || !strings.Contains(findings[1], "missing.png") {
		t.Errorf("findings = %q", findings)
	}
	// Single-file mode resolves relative to the file's directory.
	findings, err = checkMarkdown(filepath.Join(dir, "docs", "real.md"))
	if err != nil || len(findings) != 0 {
		t.Fatalf("clean file: %q, %v", findings, err)
	}
}
