package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"influcomm/internal/cluster"
	"influcomm/internal/graph"
	"influcomm/internal/server"
)

func TestParseShardSpec(t *testing.T) {
	cases := []struct {
		spec string
		want cluster.Shard
		bad  bool
	}{
		{spec: "a=http://h1:8080", want: cluster.Shard{Name: "a", Replicas: []string{"http://h1:8080"}}},
		{
			spec: "a=http://h1:8080,https://h2:8080,dataset=web",
			want: cluster.Shard{Name: "a", Replicas: []string{"http://h1:8080", "https://h2:8080"}, Dataset: "web"},
		},
		{spec: "a", bad: true},
		{spec: "=http://h1", bad: true},
		{spec: "a=", bad: true},
		{spec: "a=h1:8080", bad: true},           // not a URL
		{spec: "a=dataset=web", bad: true},       // no replicas
		{spec: "a=http://h1,weird=x", bad: true}, // unknown option
	}
	for _, tc := range cases {
		got, err := parseShardSpec(tc.spec)
		if tc.bad {
			if err == nil {
				t.Errorf("%q: no error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

// TestServeSmoke boots the coordinator against two real shard servers on an
// ephemeral port and runs one query end to end.
func TestServeSmoke(t *testing.T) {
	weights := []float64{5, 6, 7, 8, 9, 10}
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}
	g := graph.MustFromEdges(weights, edges)
	parts, err := cluster.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var shards []cluster.Shard
	for i, pg := range parts {
		s, err := server.New(pg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		shards = append(shards, cluster.Shard{Name: fmt.Sprintf("s%d", i), Replicas: []string{ts.URL}})
	}

	cfg := config{
		addr:            "127.0.0.1:0",
		shards:          shards,
		maxK:            100,
		shardTimeout:    5 * time.Second,
		readTimeout:     5 * time.Second,
		writeTimeout:    5 * time.Second,
		idleTimeout:     time.Minute,
		shutdownTimeout: 5 * time.Second,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited early: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/v1/topk?k=2&gamma=2")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Communities []cluster.Community `json:"communities"`
		Epochs      map[string]uint64   `json:"epochs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body.Communities) != 2 || len(body.Epochs) != 2 {
		t.Fatalf("status %d, body %+v", resp.StatusCode, body)
	}
	// Both triangles are 2-cores; the merged order is by influence.
	if body.Communities[0].Influence != 8 || body.Communities[1].Influence != 5 {
		t.Errorf("influences %v, %v, want 8, 5",
			body.Communities[0].Influence, body.Communities[1].Influence)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := config{shardTimeout: time.Second, probeInterval: time.Second,
		probeTimeout: time.Second, breakerCooldown: time.Second, breakerThreshold: 5, shardRetries: 1}
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*config)
	}{
		{"negative shard-timeout", func(c *config) { c.shardTimeout = -time.Second }},
		{"negative probe-interval", func(c *config) { c.probeInterval = -1 }},
		{"negative probe-timeout", func(c *config) { c.probeTimeout = -1 }},
		{"negative breaker-cooldown", func(c *config) { c.breakerCooldown = -1 }},
		{"negative hedge", func(c *config) { c.hedge = -1 }},
		{"negative breaker-threshold", func(c *config) { c.breakerThreshold = -1 }},
		{"negative shard-retries", func(c *config) { c.shardRetries = -1 }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		if err := cfg.validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
