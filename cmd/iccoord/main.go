// Command iccoord serves top-k influential community queries over HTTP by
// scatter-gather across a cluster of icserver shard nodes.
//
// Usage:
//
//	iccoord -shard name=url[,url2,...][,dataset=D]... [-addr :8090]
//	        [-maxk 10000] [-shard-timeout 10s] [-partial]
//	        [-probe-interval 2s] [-probe-timeout 1s]
//	        [-breaker-threshold 5] [-breaker-cooldown 5s]
//	        [-hedge 0] [-shard-retries 1]
//	        [-read-timeout 10s] [-write-timeout 60s] [-idle-timeout 2m]
//	        [-shutdown-timeout 15s]
//
// Endpoints (JSON):
//
//	GET /healthz
//	GET /v1/cluster
//	GET /v1/stats
//	GET /v1/topk?k=10&gamma=5[&noncontainment=1|&truss=1][&dataset=name]
//	POST /v1/query                 {"query": "DSL batch"[, "dataset": name]}
//
// POST /v1/query executes a composable-DSL batch (grammar in
// docs/ARCHITECTURE.md): every fixed-shape plan fragment is one ordinary
// scatter-gather, deduplicated across the batch's statements, so its
// merged answer is byte-identical to /v1/topk with the same shape;
// seed-scoped near(...) statements are rejected as not shard-safe.
//
// Each -shard flag (repeatable, at least one required) names one partition
// of the graph and lists its replica base URLs in failover order; dataset=D
// pins the shard-side dataset name (defaults to the query's, then the
// shard's default). Shards are icserver nodes serving the partition graphs
// written by Partition — see docs/CLUSTER.md for the partitioning step, the
// wire protocol, and why the merged answers are byte-identical to serving
// the unpartitioned graph on one node.
//
// A shard attempt that fails or exceeds -shard-timeout fails over to the
// next replica. When a shard exhausts its replicas (after -shard-retries
// extra backed-off passes), the query fails (the default, strict mode) or —
// with -partial — degrades: the answer covers the surviving shards and is
// marked "partial": true with the dropped shards listed in "failed_shards".
//
// Resilience: every -probe-interval each replica's /healthz is probed
// (bounded by -probe-timeout) to maintain up/down state, readiness, and an
// EWMA latency score; replica selection prefers healthy-lowest-latency
// replicas over the configured order. A replica failing -breaker-threshold
// consecutive attempts has its circuit breaker opened and is skipped until
// -breaker-cooldown elapses (a successful probe re-admits it immediately).
// With -hedge > 0, a shard open slower than the hedge delay races a second
// replica and the first header wins. Per-replica state is visible on
// /v1/cluster and /v1/stats. See the "replica is sick" runbook in
// docs/OPERATIONS.md for tuning guidance.
//
// The coordinator drains in-flight requests on SIGINT/SIGTERM, waiting up
// to -shutdown-timeout before closing remaining connections.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"influcomm/internal/cluster"
)

// parseShardSpec parses "name=url[,url2,...][,dataset=D]": the first URL is
// the primary replica, later bare URLs are failover replicas.
func parseShardSpec(spec string) (cluster.Shard, error) {
	var sh cluster.Shard
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" || rest == "" {
		return sh, fmt.Errorf("bad -shard %q: want name=url[,url2,...][,dataset=D]", spec)
	}
	sh.Name = name
	for _, p := range strings.Split(rest, ",") {
		switch {
		case strings.HasPrefix(p, "http://") || strings.HasPrefix(p, "https://"):
			sh.Replicas = append(sh.Replicas, p)
		case strings.HasPrefix(p, "dataset="):
			sh.Dataset = strings.TrimPrefix(p, "dataset=")
		default:
			return sh, fmt.Errorf("bad -shard part %q in %q: want a http(s) replica URL or dataset=D", p, spec)
		}
	}
	if len(sh.Replicas) == 0 {
		return sh, fmt.Errorf("bad -shard %q: no replica URLs", spec)
	}
	return sh, nil
}

// config collects the flag values; main parses, serve runs.
type config struct {
	addr             string
	shards           []cluster.Shard
	maxK             int
	shardTimeout     time.Duration
	partial          bool
	probeInterval    time.Duration
	probeTimeout     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	hedge            time.Duration
	shardRetries     int
	readTimeout      time.Duration
	writeTimeout     time.Duration
	idleTimeout      time.Duration
	shutdownTimeout  time.Duration
}

// validate rejects nonsense knob values with a usage-style error before
// the coordinator silently "corrects" them.
func (cfg *config) validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"-shard-timeout", cfg.shardTimeout},
		{"-probe-interval", cfg.probeInterval},
		{"-probe-timeout", cfg.probeTimeout},
		{"-breaker-cooldown", cfg.breakerCooldown},
		{"-hedge", cfg.hedge},
	} {
		if d.v < 0 {
			return fmt.Errorf("%s must not be negative (got %s)", d.name, d.v)
		}
	}
	if cfg.breakerThreshold < 0 {
		return fmt.Errorf("-breaker-threshold must not be negative (got %d)", cfg.breakerThreshold)
	}
	if cfg.shardRetries < 0 {
		return fmt.Errorf("-shard-retries must not be negative (got %d)", cfg.shardRetries)
	}
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8090", "listen address")
	flag.Func("shard", "shard spec: name=url[,url2,...][,dataset=D] (repeatable, at least one required)", func(spec string) error {
		sh, err := parseShardSpec(spec)
		if err != nil {
			return err
		}
		cfg.shards = append(cfg.shards, sh)
		return nil
	})
	flag.IntVar(&cfg.maxK, "maxk", 10000, "largest k a single request may ask for")
	flag.DurationVar(&cfg.shardTimeout, "shard-timeout", 10*time.Second, "per-shard attempt deadline before failover (0 = coordinator default, 30s)")
	flag.BoolVar(&cfg.partial, "partial", false, "serve degraded results from surviving shards when a shard exhausts its replicas (default: fail the query)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", 2*time.Second, "replica health-probe period (0 = no active probing)")
	flag.DurationVar(&cfg.probeTimeout, "probe-timeout", time.Second, "health-probe deadline (0 = coordinator default, 1s)")
	flag.IntVar(&cfg.breakerThreshold, "breaker-threshold", 5, "consecutive failures that open a replica's circuit breaker (0 = breakers off)")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", 5*time.Second, "how long an open breaker blocks a replica before the next trial (0 = coordinator default, 5s)")
	flag.DurationVar(&cfg.hedge, "hedge", 0, "fire a hedged shard open at a second replica after this delay (0 = no hedging)")
	flag.IntVar(&cfg.shardRetries, "shard-retries", 1, "extra backed-off passes over a shard's replicas before it counts as failed")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 60*time.Second, "HTTP write timeout")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "HTTP idle connection timeout")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 15*time.Second, "graceful shutdown drain limit")
	flag.Parse()
	if len(cfg.shards) == 0 {
		fmt.Fprintln(os.Stderr, "iccoord: at least one -shard is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "iccoord: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, nil); err != nil {
		log.Fatalf("iccoord: %v", err)
	}
}

// serve builds the coordinator and runs the HTTP server until ctx is
// cancelled, then drains gracefully. When ready is non-nil the bound
// listener address is sent on it once the server is accepting connections
// (used by tests to serve on an ephemeral port).
func serve(ctx context.Context, cfg config, ready chan<- string) error {
	opts := []cluster.Option{
		cluster.WithShardTimeout(cfg.shardTimeout),
		cluster.WithPartialResults(cfg.partial),
		cluster.WithHealthProbes(cfg.probeInterval, cfg.probeTimeout),
		cluster.WithBreaker(cfg.breakerThreshold, cfg.breakerCooldown),
		cluster.WithHedge(cfg.hedge),
		cluster.WithOpenRetries(cfg.shardRetries),
	}
	coord, err := cluster.NewCoordinator(cfg.shards, opts...)
	if err != nil {
		return err
	}
	defer coord.Close()
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           cluster.NewHandler(coord, cfg.maxK),
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	mode := "strict"
	if cfg.partial {
		mode = "partial"
	}
	log.Printf("iccoord: coordinating %d shards (%s mode) on %s", len(cfg.shards), mode, ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("iccoord: shutting down, draining for up to %s", cfg.shutdownTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
