// Command icbench regenerates the paper's evaluation: every table and
// figure of §6, on the synthetic stand-in datasets (see DESIGN.md §4 for
// the substitution rationale).
//
// Usage:
//
//	icbench                         # run the full suite
//	icbench -experiment fig8        # one experiment
//	icbench -datasets email,wiki    # restrict datasets
//	icbench -repeat 3               # repeat timings (paper: 3 runs)
//	icbench -out results.txt        # write to a file instead of stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"influcomm/internal/bench"
	"influcomm/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			fmt.Sprintf("experiment to run: one of %v, or \"all\"", bench.Experiments))
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default: each experiment's paper selection)")
		repeat   = flag.Int("repeat", 1, "timing repetitions per measurement")
		out      = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "icbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{Repeat: *repeat}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	defer workload.Cleanup()
	if err := bench.Run(w, *experiment, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "icbench:", err)
		os.Exit(1)
	}
}
