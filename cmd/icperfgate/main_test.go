package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: influcomm
cpu: Some CPU @ 2.10GHz
BenchmarkPooledTopK/PerQuery-8         	   63648	     18402 ns/op	   54952 B/op	      61 allocs/op
BenchmarkPooledTopK/Pooled-8           	  139124	      8600 ns/op	    1448 B/op	      25 allocs/op
BenchmarkPooledTopK/Pooled-8           	  140000	      8800 ns/op	    1448 B/op	      27 allocs/op
BenchmarkPooledTopK/Pooled-8           	  138000	      8700 ns/op	    1448 B/op	      25 allocs/op
BenchmarkIndexServe/k=10-8             	  500000	      2400 ns/op
PASS
ok  	influcomm	12.3s
`

func f64(v float64) *float64 { return &v }

func TestParseAndAggregate(t *testing.T) {
	samples, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkPooledTopK/Pooled"].ns); got != 3 {
		t.Fatalf("pooled samples = %d, want 3 (procs suffix must fold)", got)
	}
	agg := aggregate(samples)
	pooled := agg.Benchmarks["BenchmarkPooledTopK/Pooled"]
	if pooled.NsPerOp != 8700 {
		t.Errorf("median = %v, want 8700", pooled.NsPerOp)
	}
	if pooled.AllocsPerOp == nil || *pooled.AllocsPerOp != 25 {
		t.Errorf("allocs median = %v, want 25", pooled.AllocsPerOp)
	}
	if pooled.BytesPerOp == nil || *pooled.BytesPerOp != 1448 {
		t.Errorf("bytes median = %v, want 1448", pooled.BytesPerOp)
	}
	serve := agg.Benchmarks["BenchmarkIndexServe/k=10"]
	if serve.Samples != 1 {
		t.Errorf("samples = %d, want 1", serve.Samples)
	}
	if serve.AllocsPerOp != nil {
		t.Errorf("no -benchmem output must record no allocs, got %v", *serve.AllocsPerOp)
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
}

func TestCompare(t *testing.T) {
	base := benchFile{Benchmarks: map[string]benchResult{
		"A": {NsPerOp: 1000},
		"B": {NsPerOp: 1000},
		"C": {NsPerOp: 1000},
		"D": {NsPerOp: 1000},
	}}
	cur := benchFile{Benchmarks: map[string]benchResult{
		"A": {NsPerOp: 1200}, // +20%: within threshold
		"B": {NsPerOp: 1300}, // +30%: regression
		"C": {NsPerOp: 500},  // improvement
		// D missing: failure
		"E": {NsPerOp: 100}, // new: informational
	}}
	var lines []string
	n := compare(base, cur, 0.25, 0.25, false, func(f string, args ...any) {
		lines = append(lines, strings.Split(f, " ")[0])
	})
	if n != 2 {
		t.Fatalf("failures = %d, want 2 (one regression, one missing): %v", n, lines)
	}
	// With -require-baseline the new benchmark E fails too.
	if n := compare(base, cur, 0.25, 0.25, true, func(string, ...any) {}); n != 3 {
		t.Fatalf("require-baseline failures = %d, want 3 (regression, missing, unrecorded)", n)
	}
}

func TestCompareAllocGate(t *testing.T) {
	base := benchFile{Benchmarks: map[string]benchResult{
		"ZeroAlloc":  {NsPerOp: 1000, AllocsPerOp: f64(0)},
		"Pooled":     {NsPerOp: 1000, AllocsPerOp: f64(25)},
		"Jitter":     {NsPerOp: 1000, AllocsPerOp: f64(3)},
		"Legacy":     {NsPerOp: 1000}, // baseline predates alloc tracking
		"Improved":   {NsPerOp: 1000, AllocsPerOp: f64(100)},
		"TimeStable": {NsPerOp: 1000, AllocsPerOp: f64(10)},
	}}
	cur := benchFile{Benchmarks: map[string]benchResult{
		"ZeroAlloc":  {NsPerOp: 1000, AllocsPerOp: f64(1)},    // 0 -> 1: fail
		"Pooled":     {NsPerOp: 1000, AllocsPerOp: f64(40)},   // +60%: fail
		"Jitter":     {NsPerOp: 1000, AllocsPerOp: f64(3)},    // stable: ok
		"Legacy":     {NsPerOp: 1000, AllocsPerOp: f64(9999)}, // no baseline allocs: time-only
		"Improved":   {NsPerOp: 1000, AllocsPerOp: f64(10)},   // improvement: ok
		"TimeStable": {NsPerOp: 1000},                         // current lost -benchmem: time-only
	}}
	n := compare(base, cur, 0.25, 0.25, false, func(string, ...any) {})
	if n != 2 {
		t.Fatalf("failures = %d, want 2 (zero-alloc break + pooled regression)", n)
	}
	// A one-alloc bump on a tiny count stays inside the absolute slack.
	if n := compare(
		benchFile{Benchmarks: map[string]benchResult{"T": {NsPerOp: 1, AllocsPerOp: f64(2)}}},
		benchFile{Benchmarks: map[string]benchResult{"T": {NsPerOp: 1, AllocsPerOp: f64(3)}}},
		0.25, 0.25, false, func(string, ...any) {}); n != 0 {
		t.Fatalf("one-alloc jitter on a tiny count failed the gate")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	outPath := filepath.Join(dir, "out.json")
	logf := func(string, ...any) {}

	// First run updates the baseline.
	n, err := run(config{update: true, baseline: basePath, out: outPath}, strings.NewReader(sampleBench), logf)
	if err != nil || n != 0 {
		t.Fatalf("update run: failures=%d err=%v", n, err)
	}
	// Same input compared against it is clean.
	n, err = run(config{baseline: basePath, threshold: 0.25, allocThreshold: 0.25}, strings.NewReader(sampleBench), logf)
	if err != nil || n != 0 {
		t.Fatalf("identical run: failures=%d err=%v", n, err)
	}
	// A 10x slowdown trips the gate.
	slow := strings.ReplaceAll(sampleBench, "      2400 ns/op", "     24000 ns/op")
	n, err = run(config{baseline: basePath, threshold: 0.25, allocThreshold: 0.25}, strings.NewReader(slow), logf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("slowdown run: failures=%d, want 1", n)
	}
	// An allocation explosion on a time-stable benchmark also trips it.
	leaky := strings.ReplaceAll(sampleBench, "    1448 B/op	      25 allocs/op", "  904952 B/op	    4025 allocs/op")
	n, err = run(config{baseline: basePath, threshold: 0.25, allocThreshold: 0.25}, strings.NewReader(leaky), logf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("alloc regression run: failures=%d, want 1", n)
	}
	// Empty input is an error, not a silent pass.
	if _, err := run(config{baseline: basePath}, strings.NewReader("no benchmarks here"), logf); err == nil {
		t.Error("empty input: want error")
	}
}

// TestStepSummary checks the GitHub Actions job-summary table: appended
// (not truncated) to $GITHUB_STEP_SUMMARY, one row per benchmark with the
// baseline-vs-current delta, and new/missing rows called out.
func TestStepSummary(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	logf := func(string, ...any) {}
	if _, err := run(config{update: true, baseline: basePath}, strings.NewReader(sampleBench), logf); err != nil {
		t.Fatal(err)
	}

	summaryPath := filepath.Join(dir, "summary.md")
	if err := os.WriteFile(summaryPath, []byte("pre-existing content\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv("GITHUB_STEP_SUMMARY", summaryPath)
	// Current run: Pooled 2x slower (all three samples, so the median
	// doubles), PerQuery renamed away, one new benchmark.
	cur := sampleBench
	for _, r := range [][2]string{
		{"      8600 ns/op", "     17200 ns/op"},
		{"      8800 ns/op", "     17600 ns/op"},
		{"      8700 ns/op", "     17400 ns/op"},
		{"BenchmarkPooledTopK/PerQuery-8", "BenchmarkFresh/New-8"},
	} {
		cur = strings.ReplaceAll(cur, r[0], r[1])
	}
	if _, err := run(config{baseline: basePath, threshold: 0.25, allocThreshold: 0.25}, strings.NewReader(cur), logf); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.HasPrefix(out, "pre-existing content\n") {
		t.Fatalf("summary was truncated, not appended:\n%s", out)
	}
	for _, want := range []string{
		"| benchmark | baseline ns/op | current ns/op |",
		"`BenchmarkPooledTopK/Pooled`",
		"+100.0%",
		"| `BenchmarkFresh/New` | *new* |",
		"| `BenchmarkPooledTopK/PerQuery` | 18402 | *missing* |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Outside Actions (env unset) nothing is written.
	t.Setenv("GITHUB_STEP_SUMMARY", "")
	plainPath := filepath.Join(dir, "unused.md")
	if _, err := run(config{baseline: basePath, threshold: 0.25, allocThreshold: 0.25}, strings.NewReader(sampleBench), logf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(plainPath); err == nil {
		t.Error("summary written without GITHUB_STEP_SUMMARY")
	}
}
