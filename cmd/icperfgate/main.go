// Command icperfgate is the CI benchmark-regression gate: it parses `go
// test -bench` output, aggregates repeated runs (-count) into per-benchmark
// medians, writes the result as JSON, and compares it against a committed
// baseline with a relative threshold — failing (exit 1) when any benchmark
// regresses beyond it or disappears from the run.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem -count 5 ./... | icperfgate \
//	    -out BENCH_pr.json -baseline BENCH_baseline.json -threshold 0.25 \
//	    -alloc-threshold 0.25
//
//	icperfgate -in bench.txt -update -baseline BENCH_baseline.json
//
// With -update the current medians are written to the baseline path and no
// comparison happens: run it on the reference machine after an intentional
// performance change and commit the file. Absolute ns/op only compare
// within one machine class, so the committed baseline is tied to the CI
// runner class; improvements beyond the threshold are reported but never
// fail the gate.
//
// Benchmarks that report allocations (-benchmem or b.ReportAllocs) are
// additionally gated on allocs/op with -alloc-threshold: an allocation
// count is deterministic on a given code path, so a jump past the
// threshold (plus a half-alloc absolute slack, letting 0 stay 0) means a
// hot path started allocating — exactly the regression the pooled serving
// tier exists to prevent. Baselines recorded before allocation tracking
// simply carry no allocs_per_op and those benchmarks gate on time alone.
//
// When GITHUB_STEP_SUMMARY is set (GitHub Actions), the baseline-vs-
// current comparison is also appended there as a markdown table, so the
// numbers appear on the workflow run page without opening the job log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result line; the -N suffix is the
// GOMAXPROCS tag and is folded away so results compare across machines
// with different core counts. The B/op + allocs/op tail appears when the
// benchmark reports allocations.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// benchResult is one benchmark's aggregate in the JSON files. The
// allocation fields are pointers so baselines written before allocation
// tracking read back as "not measured" rather than "zero allocations".
type benchResult struct {
	NsPerOp     float64  `json:"ns_per_op"`
	Samples     int      `json:"samples"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// benchFile is the BENCH_*.json layout.
type benchFile struct {
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

// rawSamples collects one benchmark's repeated measurements before
// aggregation; bytes/allocs stay empty for benchmarks that do not report
// allocations.
type rawSamples struct {
	ns     []float64
	bytes  []float64
	allocs []float64
}

// parseBench collects per-benchmark samples from `go test -bench` output.
func parseBench(r io.Reader) (map[string]*rawSamples, error) {
	out := make(map[string]*rawSamples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		s := out[m[1]]
		if s == nil {
			s = &rawSamples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, ns)
		if m[4] != "" {
			b, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			a, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
			s.bytes = append(s.bytes, b)
			s.allocs = append(s.allocs, a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// median returns the middle sample (mean of the middle two for even
// counts); the aggregate benchstat uses for its central tendency.
func median(samples []float64) float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// aggregate folds samples into the JSON shape.
func aggregate(samples map[string]*rawSamples) benchFile {
	out := benchFile{Benchmarks: make(map[string]benchResult, len(samples))}
	for name, s := range samples {
		r := benchResult{NsPerOp: median(s.ns), Samples: len(s.ns)}
		if len(s.allocs) > 0 {
			b, a := median(s.bytes), median(s.allocs)
			r.BytesPerOp, r.AllocsPerOp = &b, &a
		}
		out.Benchmarks[name] = r
	}
	return out
}

// compare reports regressions (current slower than baseline by more than
// threshold, or allocating more than allocThreshold beyond it) and
// benchmarks missing from the current run; both fail the gate.
// Improvements are informational. Benchmarks present in the run but absent
// from the baseline are informational too, unless requireBaseline is set —
// then they fail, so a PR adding a benchmark must record its baseline row
// in the same change instead of shipping an ungated number.
func compare(baseline, current benchFile, threshold, allocThreshold float64, requireBaseline bool, logf func(string, ...any)) (failures int) {
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			logf("FAIL %s: in baseline but missing from this run (deleted or renamed? update the baseline)", name)
			failures++
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		delta := (ratio - 1) * 100
		switch {
		case ratio > 1+threshold:
			logf("FAIL %s: %.0f ns/op vs baseline %.0f (%+.1f%%, threshold %+.0f%%)",
				name, cur.NsPerOp, base.NsPerOp, delta, threshold*100)
			failures++
		case ratio < 1-threshold:
			logf("ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%, improvement)", name, cur.NsPerOp, base.NsPerOp, delta)
		default:
			logf("ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%)", name, cur.NsPerOp, base.NsPerOp, delta)
		}
		if base.AllocsPerOp != nil && cur.AllocsPerOp != nil {
			ba, ca := *base.AllocsPerOp, *cur.AllocsPerOp
			// Half-alloc absolute slack: a zero-alloc baseline stays a hard
			// zero gate, and integer jitter of one alloc on tiny counts
			// does not fail a run the relative threshold would allow.
			if ca > ba*(1+allocThreshold)+0.5 {
				logf("FAIL %s: %.0f allocs/op vs baseline %.0f (threshold %+.0f%%)", name, ca, ba, allocThreshold*100)
				failures++
			} else if ca < ba*(1-allocThreshold)-0.5 {
				logf("ok   %s: %.0f allocs/op vs baseline %.0f (improvement)", name, ca, ba)
			}
		}
	}
	extra := make([]string, 0)
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		if requireBaseline {
			logf("FAIL %s: %.0f ns/op but no baseline row (record it: icperfgate -update)", name, current.Benchmarks[name].NsPerOp)
			failures++
		} else {
			logf("new  %s: %.0f ns/op (not in baseline)", name, current.Benchmarks[name].NsPerOp)
		}
	}
	return failures
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

type config struct {
	in              string
	out             string
	baseline        string
	threshold       float64
	allocThreshold  float64
	update          bool
	requireBaseline bool
}

// run executes the gate; the returned count is the number of failures.
func run(cfg config, stdin io.Reader, logf func(string, ...any)) (int, error) {
	src := stdin
	if cfg.in != "" && cfg.in != "-" {
		f, err := os.Open(cfg.in)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		src = f
	}
	samples, err := parseBench(src)
	if err != nil {
		return 0, err
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("no benchmark results found in input")
	}
	current := aggregate(samples)
	if cfg.out != "" {
		if err := writeJSONFile(cfg.out, current); err != nil {
			return 0, err
		}
	}
	if cfg.update {
		if cfg.baseline == "" {
			return 0, fmt.Errorf("-update needs -baseline")
		}
		if err := writeJSONFile(cfg.baseline, current); err != nil {
			return 0, err
		}
		logf("baseline %s updated with %d benchmarks", cfg.baseline, len(current.Benchmarks))
		return 0, nil
	}
	if cfg.baseline == "" {
		logf("no -baseline given; recorded %d benchmarks", len(current.Benchmarks))
		return 0, nil
	}
	data, err := os.ReadFile(cfg.baseline)
	if err != nil {
		return 0, err
	}
	var baseline benchFile
	if err := json.Unmarshal(data, &baseline); err != nil {
		return 0, fmt.Errorf("parsing baseline %s: %w", cfg.baseline, err)
	}
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := stepSummary(baseline, current, path); err != nil {
			logf("step summary: %v", err)
		}
	}
	return compare(baseline, current, cfg.threshold, cfg.allocThreshold, cfg.requireBaseline, logf), nil
}

// stepSummary appends the baseline-vs-current comparison as a markdown
// table to path (the file $GITHUB_STEP_SUMMARY points at on GitHub
// Actions), so the numbers are readable from the workflow run page
// without digging through the job log. Rendering never fails the gate:
// the caller only logs an error.
func stepSummary(baseline, current benchFile, path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	names := make(map[string]bool, len(baseline.Benchmarks)+len(current.Benchmarks))
	for name := range baseline.Benchmarks {
		names[name] = true
	}
	for name := range current.Benchmarks {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)
	fmt.Fprintf(f, "### Benchmark gate (%d benchmarks)\n\n", len(sorted))
	fmt.Fprintln(f, "| benchmark | baseline ns/op | current ns/op | Δ time | allocs/op |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---:|")
	for _, name := range sorted {
		base, hasBase := baseline.Benchmarks[name]
		cur, hasCur := current.Benchmarks[name]
		allocs := "–"
		if hasCur && cur.AllocsPerOp != nil {
			allocs = fmt.Sprintf("%.0f", *cur.AllocsPerOp)
		}
		switch {
		case !hasCur:
			fmt.Fprintf(f, "| `%s` | %.0f | *missing* | – | %s |\n", name, base.NsPerOp, allocs)
		case !hasBase:
			fmt.Fprintf(f, "| `%s` | *new* | %.0f | – | %s |\n", name, cur.NsPerOp, allocs)
		default:
			fmt.Fprintf(f, "| `%s` | %.0f | %.0f | %+.1f%% | %s |\n",
				name, base.NsPerOp, cur.NsPerOp, (cur.NsPerOp/base.NsPerOp-1)*100, allocs)
		}
	}
	fmt.Fprintln(f)
	return nil
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "-", "benchmark output to read (\"-\" = stdin)")
	flag.StringVar(&cfg.out, "out", "", "write current medians to this JSON file")
	flag.StringVar(&cfg.baseline, "baseline", "", "baseline JSON to compare against")
	flag.Float64Var(&cfg.threshold, "threshold", 0.25, "relative slowdown that fails the gate")
	flag.Float64Var(&cfg.allocThreshold, "alloc-threshold", 0.25, "relative allocs/op growth that fails the gate (half-alloc absolute slack)")
	flag.BoolVar(&cfg.update, "update", false, "rewrite the baseline from this run instead of comparing")
	flag.BoolVar(&cfg.requireBaseline, "require-baseline", false, "fail on benchmarks the baseline has no row for (new benchmarks must be recorded, not shipped ungated)")
	flag.Parse()
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	failures, err := run(cfg, os.Stdin, logf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icperfgate:", err)
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "icperfgate: %d benchmark(s) regressed beyond the %.0f%% threshold\n", failures, cfg.threshold*100)
		os.Exit(1)
	}
}
