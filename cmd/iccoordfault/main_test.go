package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// startProxy boots serve on an ephemeral port and returns its base URL.
func startProxy(t *testing.T, cfg config) string {
	t.Helper()
	cfg.listen = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ready := make(chan string, 1)
	go func() { done <- serve(ctx, cfg, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("serve exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("proxy did not come up")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("proxy did not shut down")
		}
	})
	return "http://" + addr
}

func TestProxySmoke(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello %s", r.URL.Path)
	}))
	defer backend.Close()

	base := startProxy(t, config{target: backend.URL, script: "status=503,for=1;up", seed: 1})

	resp, err := http.Get(base + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("first request: status %d, want injected 503", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "hello /v1/topk" {
		t.Fatalf("second request: status %d body %q, want forwarded answer", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/faultz")
	if err != nil {
		t.Fatal(err)
	}
	counts, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := "{\"requests\":2,\"faulted\":1}"; strings.TrimSpace(string(counts)) != want {
		t.Fatalf("faultz = %q, want %q", counts, want)
	}
}

func TestProxyRejectsBadFlags(t *testing.T) {
	if err := serve(context.Background(), config{target: "http://x", script: "nonsense=1"}, nil); err == nil {
		t.Fatal("bad script accepted")
	}
	if err := serve(context.Background(), config{target: "ftp://x", script: "up"}, nil); err == nil {
		t.Fatal("bad target accepted")
	}
}
