// Command iccoordfault is a fault-injecting reverse proxy for cluster
// chaos drills: put it between an iccoord coordinator and an icserver
// shard replica, script the faults, and watch the coordinator's
// prober, circuit breakers, and failover react — reproducibly, because
// fault schedules advance by request count and all randomness comes
// from -seed.
//
// Usage:
//
//	iccoordfault -target http://localhost:8081 -script 'up,for=20;status=503,for=5;loop'
//	             [-listen :9001] [-seed 1] [-upstream-timeout 0]
//
// The -script DSL is a ';'-separated list of phases, each a
// ','-separated list of directives:
//
//	up                 no fault (explicit healthy phase)
//	latency=DUR        add DUR before forwarding (Go duration syntax)
//	ramp=DUR           add DUR×n extra latency to the n-th phase request
//	jitter=DUR         add uniform [0,DUR) seeded-random latency
//	status=N           answer with HTTP status N instead of forwarding
//	blackhole          swallow the request until the client gives up
//	truncate=Nl        cut the response after N body lines (mid-stream drop)
//	truncate=Nb        cut the response after N body bytes
//	for=N              the phase covers N requests (default: forever)
//	loop               restart at the first phase after the last
//
// Examples:
//
//	-script 'blackhole'                          a dead replica
//	-script 'latency=50ms,jitter=20ms'           a slow, wobbly replica
//	-script 'up,for=50;blackhole,for=10;loop'    a flapping replica
//	-script 'truncate=3l,for=1;up'               one mid-stream drop, then heal
//
// Point the corresponding iccoord -shard replica URL at the proxy's
// -listen address. GET /faultz on the proxy reports request/fault
// counts (every other path is forwarded, including /healthz — probes
// are subject to faults too, exactly like production traffic).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"influcomm/internal/faultnet"
)

// config collects the flag values; main parses, serve runs.
type config struct {
	listen          string
	target          string
	script          string
	seed            int64
	upstreamTimeout time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.listen, "listen", ":9001", "proxy listen address")
	flag.StringVar(&cfg.target, "target", "", "upstream base URL to forward to (required)")
	flag.StringVar(&cfg.script, "script", "up", "fault script (see package docs for the DSL)")
	flag.Int64Var(&cfg.seed, "seed", 1, "PRNG seed for jitter — same seed, same faults")
	flag.DurationVar(&cfg.upstreamTimeout, "upstream-timeout", 0, "upstream request deadline (0 = none; the client's own deadline still applies)")
	flag.Parse()
	if cfg.target == "" {
		fmt.Fprintln(os.Stderr, "iccoordfault: -target is required")
		flag.Usage()
		os.Exit(2)
	}
	if cfg.upstreamTimeout < 0 {
		fmt.Fprintln(os.Stderr, "iccoordfault: -upstream-timeout must not be negative")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, nil); err != nil {
		log.Fatalf("iccoordfault: %v", err)
	}
}

// serve runs the proxy until ctx is cancelled. When ready is non-nil the
// bound listener address is sent on it once the proxy is accepting
// connections (used by tests to serve on an ephemeral port).
func serve(ctx context.Context, cfg config, ready chan<- string) error {
	script, err := faultnet.ParseScript(cfg.script, cfg.seed)
	if err != nil {
		return err
	}
	proxy, err := faultnet.NewProxy(cfg.target, script, &http.Client{Timeout: cfg.upstreamTimeout})
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /faultz", func(w http.ResponseWriter, r *http.Request) {
		st := proxy.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"requests\":%d,\"faulted\":%d}\n", st.Requests, st.Faulted)
	})
	mux.Handle("/", proxy)
	srv := &http.Server{Addr: cfg.listen, Handler: mux}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	log.Printf("iccoordfault: faulting %s on %s (script %q, seed %d)", cfg.target, ln.Addr(), cfg.script, cfg.seed)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Black-holed connections only release when their clients give up, so
	// shut down abruptly: a chaos tool has no graceful-drain obligation.
	srv.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
