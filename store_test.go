package influcomm

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
)

// buildStoreGraph returns a deterministic 60-vertex graph with planted
// dense groups among the heavy vertices.
func buildStoreGraph(t testing.TB) *Graph {
	t.Helper()
	var b Builder
	for id := int32(0); id < 60; id++ {
		b.AddVertex(id, float64(1000-id))
	}
	// Three 5-cliques among heavy vertices, a chain through the rest.
	for c := int32(0); c < 3; c++ {
		base := c * 5
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				b.AddEdge(i, j)
			}
		}
	}
	for id := int32(15); id < 59; id++ {
		b.AddEdge(id, id+1)
	}
	b.AddEdge(4, 15)
	b.AddEdge(9, 30)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func renderCommunities(res *Result) string {
	s := fmt.Sprintf("%+v\n", res.Stats)
	for _, c := range res.Communities {
		s += fmt.Sprintf("%v key=%d %v\n", c.Influence(), c.Keynode(), c.Vertices())
	}
	return s
}

// TestStoreBackendsMatchPublicAPI: SaveEdgeFile + OpenEdgeFileStore answers
// exactly what TopK answers over the same graph, through the public API.
func TestStoreBackendsMatchPublicAPI(t *testing.T) {
	g := buildStoreGraph(t)
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := SaveEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	se, err := OpenEdgeFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	mem, err := NewMemoryStore(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := renderCommunities(want)
	ctx := context.Background()
	for name, st := range map[string]Store{"memory": mem, "semiext": se} {
		res, err := st.TopK(ctx, 4, 3, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := renderCommunities(res); got != ref {
			t.Errorf("%s store differs from TopK:\n got %s\nwant %s", name, got, ref)
		}
	}
	if se.Backend() != "semiext" || mem.Backend() != "memory" {
		t.Errorf("backends = %q, %q", se.Backend(), mem.Backend())
	}
}

// TestOpenStoreRoundTrip exercises OpenStore over a saved graph file and a
// saved edge file.
func TestOpenStoreRoundTrip(t *testing.T) {
	g := buildStoreGraph(t)
	dir := t.TempDir()
	gp := filepath.Join(dir, "g.txt")
	if err := SaveGraph(gp, g); err != nil {
		t.Fatal(err)
	}
	ep := filepath.Join(dir, "g.edges")
	if err := SaveEdgeFile(ep, g); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ path, backend string }{
		{gp, "memory"},
		{gp, ""},
		{ep, "semiext"},
	} {
		st, err := OpenStore(tc.path, tc.backend)
		if err != nil {
			t.Fatalf("OpenStore(%q, %q): %v", tc.path, tc.backend, err)
		}
		if st.NumVertices() != g.NumVertices() || st.NumEdges() != g.NumEdges() {
			t.Errorf("OpenStore(%q, %q): shape (%d,%d), want (%d,%d)",
				tc.path, tc.backend, st.NumVertices(), st.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		st.Close()
	}
}

// TestTopKBatchStore runs a batch through both backends and cross-checks
// every query against the single-query path.
func TestTopKBatchStore(t *testing.T) {
	g := buildStoreGraph(t)
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := SaveEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	se, err := OpenEdgeFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := NewMemoryStore(g)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{K: 1, Gamma: 2},
		{K: 3, Gamma: 3},
		{K: 5, Gamma: 4},
		{K: 2, Gamma: 3, Options: Options{NonContainment: true}},
	}
	for name, st := range map[string]Store{"memory": mem, "semiext": se} {
		got, err := TopKBatchStoreContext(context.Background(), st, queries, BatchOptions{Parallelism: 3})
		if err != nil {
			t.Fatalf("%s batch: %v", name, err)
		}
		for i, qr := range got {
			if qr.Err != nil {
				t.Fatalf("%s query %d: %v", name, i, qr.Err)
			}
			want, err := TopKWithOptions(g, queries[i].K, queries[i].Gamma, queries[i].Options)
			if err != nil {
				t.Fatal(err)
			}
			if renderCommunities(qr.Result) != renderCommunities(want) {
				t.Errorf("%s query %d diverges from single-query path", name, i)
			}
		}
	}
}

// TestQueryPoolStore: the pool exposes itself as the in-memory Store.
func TestQueryPoolStore(t *testing.T) {
	g := buildStoreGraph(t)
	q := NewQueryPool(g)
	st := q.Store()
	if st == nil || st.Backend() != "memory" {
		t.Fatalf("pool store = %v", st)
	}
	res, err := st.TopK(context.Background(), 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) == 0 {
		t.Error("pool store returned no communities")
	}
}
