package influcomm

import (
	"testing"
)

func TestTopKBatch(t *testing.T) {
	g := figure1(t)
	queries := []Query{
		{K: 1, Gamma: 3},
		{K: 2, Gamma: 3},
		{K: 5, Gamma: 3},
		{K: 1, Gamma: 4}, // no communities
		{K: 0, Gamma: 3}, // invalid
	}
	for _, par := range []int{0, 1, 3, 16} {
		results := TopKBatch(g, queries, par)
		if len(results) != len(queries) {
			t.Fatalf("parallelism %d: got %d results", par, len(results))
		}
		if results[0].Err != nil || len(results[0].Result.Communities) != 1 {
			t.Errorf("parallelism %d: query 0 = %+v", par, results[0])
		}
		if results[1].Err != nil || len(results[1].Result.Communities) != 2 {
			t.Errorf("parallelism %d: query 1 failed", par)
		}
		if results[2].Err != nil || len(results[2].Result.Communities) != 2 {
			t.Errorf("parallelism %d: query 2 should return all 2 communities", par)
		}
		if results[3].Err != nil || len(results[3].Result.Communities) != 0 {
			t.Errorf("parallelism %d: γ=4 should return none", par)
		}
		if results[4].Err == nil {
			t.Errorf("parallelism %d: k=0 should error", par)
		}
		// Results must be deterministic regardless of parallelism.
		if results[1].Result.Communities[0].Influence() != 13 {
			t.Errorf("parallelism %d: nondeterministic result", par)
		}
	}
}

func TestTopKBatchConcurrentConsistency(t *testing.T) {
	// Run with -race: many goroutines share one graph.
	g := figure1(t)
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{K: i%5 + 1, Gamma: 3}
	}
	results := TopKBatch(g, queries, 8)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		want := queries[i].K
		if want > 2 {
			want = 2
		}
		if len(r.Result.Communities) != want {
			t.Errorf("query %d: got %d communities, want %d", i, len(r.Result.Communities), want)
		}
	}
}

func TestTopKBatchEmpty(t *testing.T) {
	g := figure1(t)
	if got := TopKBatch(g, nil, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}
