package influcomm_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"influcomm"
	"influcomm/internal/server"
)

// exampleGraph builds the small fixture the examples share: two triangles
// bridged by an edge, with weights decreasing in vertex ID so that IDs
// coincide with weight ranks.
func exampleGraph() *influcomm.Graph {
	var b influcomm.Builder
	for id := int32(0); id < 6; id++ {
		b.AddVertex(id, float64(10-id))
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleTopK() {
	g := exampleGraph()
	res, err := influcomm.TopK(g, 2, 2) // top-2, γ = 2
	if err != nil {
		panic(err)
	}
	for _, c := range res.Communities {
		fmt.Printf("influence %.0f, %d members\n", c.Influence(), c.Size())
	}
	// Output:
	// influence 8, 3 members
	// influence 5, 6 members
}

func ExampleStream() {
	g := exampleGraph()
	_, err := influcomm.Stream(g, 2, func(c *influcomm.Community) bool {
		fmt.Printf("influence %.0f\n", c.Influence())
		return true // keep streaming
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// influence 8
	// influence 5
}

func ExampleQueryPool() {
	pool := influcomm.NewQueryPool(exampleGraph())
	for i := 0; i < 3; i++ { // engines are reused, not reallocated
		res, err := pool.TopK(context.Background(), 1, 2)
		if err != nil {
			panic(err)
		}
		fmt.Printf("top influence %.0f\n", res.Communities[0].Influence())
	}
	// Output:
	// top influence 8
	// top influence 8
	// top influence 8
}

func ExampleTopKBatch() {
	g := exampleGraph()
	queries := []influcomm.Query{{K: 1, Gamma: 2}, {K: 2, Gamma: 2}}
	for _, r := range influcomm.TopKBatch(g, queries, 2) {
		if r.Err != nil {
			panic(r.Err)
		}
		fmt.Printf("k=%d: %d communities\n", r.Query.K, len(r.Result.Communities))
	}
	// Output:
	// k=1: 1 communities
	// k=2: 2 communities
}

func ExampleNewMutableStore() {
	st, err := influcomm.NewMutableStore(exampleGraph())
	if err != nil {
		panic(err)
	}
	defer st.Close()
	ctx := context.Background()

	// Deleting one triangle edge dissolves the top community; queries
	// in flight keep their snapshot, new queries see the change.
	stats, err := st.ApplyUpdates(ctx, []influcomm.EdgeUpdate{{U: 0, V: 1, Delete: true}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deleted %d, epoch %d\n", stats.Deleted, stats.Epoch)
	res, err := st.TopK(ctx, 1, 2, influcomm.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top influence now %.0f\n", res.Communities[0].Influence())
	// Output:
	// deleted 1, epoch 1
	// top influence now 5
}

func ExampleNewMutableStore_autoReindex() {
	// With auto-reindex, a served mutable dataset keeps its prebuilt index
	// current across online updates instead of dropping it on the first
	// one: small deltas are repaired synchronously inside ApplyUpdates,
	// larger ones rebuild in the background while queries fall back to
	// LocalSearch.
	var b influcomm.Builder
	for id := int32(0); id < 20; id++ {
		b.AddVertex(id, float64(40-id))
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {17, 18}, {17, 19}, {18, 19}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	ms, err := influcomm.NewMutableStore(g)
	if err != nil {
		panic(err)
	}
	ix, err := influcomm.BuildIndex(ms.Graph())
	if err != nil {
		panic(err)
	}
	s, err := server.New(exampleGraph(), server.WithAutoReindex(),
		server.WithDataset("social", server.DatasetConfig{Store: ms, Index: ix}))
	if err != nil {
		panic(err)
	}
	defer s.Close()

	// Deleting a bottom-of-the-ranking edge touches only a small suffix of
	// the weight ranking, so the delta repair re-attaches a current index
	// before ApplyUpdates even returns.
	if _, err := ms.ApplyUpdates(context.Background(), []influcomm.EdgeUpdate{{U: 18, V: 19, Delete: true}}); err != nil {
		panic(err)
	}
	for _, d := range s.Datasets() {
		if d.Name == "social" {
			fmt.Printf("index %s after %d delta repair(s), %d rebuild(s)\n",
				d.IndexState, d.IndexDeltaRepairs, d.IndexRebuilds)
		}
	}
	// Output:
	// index attached after 1 delta repair(s), 0 rebuild(s)
}

func ExampleApply() {
	st, err := influcomm.NewMutableStore(exampleGraph())
	if err != nil {
		panic(err)
	}
	defer st.Close()
	// Apply works on a plain Store as long as its backend is mutable; a
	// no-op insert is skipped, not an error.
	stats, err := influcomm.Apply(context.Background(), st, []influcomm.EdgeUpdate{
		{U: 0, V: 3}, // new bridge
		{U: 0, V: 1}, // already present
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("inserted %d, skipped %d\n", stats.Inserted, stats.Skipped)
	// Output:
	// inserted 1, skipped 1
}

func ExampleOpenMutableStore() {
	dir, err := os.MkdirTemp("", "influcomm-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.edges")
	if err := influcomm.SaveEdgeFile(path, exampleGraph()); err != nil {
		panic(err)
	}

	st, err := influcomm.OpenMutableStore(path)
	if err != nil {
		panic(err)
	}
	if _, err := st.ApplyUpdates(context.Background(), []influcomm.EdgeUpdate{{U: 1, V: 4}}); err != nil {
		panic(err)
	}
	// The batch is already fsynced to the write-ahead log; Close compacts
	// the log back into the edge file.
	if err := st.Close(); err != nil {
		panic(err)
	}

	re, err := influcomm.OpenMutableStore(path)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Printf("%d edges survive the restart\n", re.NumEdges())
	// Output:
	// 8 edges survive the restart
}

func ExampleOpenEdgeFileStore() {
	dir, err := os.MkdirTemp("", "influcomm-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "g.edges")
	if err := influcomm.SaveEdgeFile(path, exampleGraph()); err != nil {
		panic(err)
	}

	// Semi-external serving: only per-vertex state is resident; the query
	// reads just the weight-ranked prefix it needs.
	st, err := influcomm.OpenEdgeFileStore(path)
	if err != nil {
		panic(err)
	}
	defer st.Close()
	res, err := st.TopK(context.Background(), 1, 2, influcomm.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("influence %.0f from the %s backend\n", res.Communities[0].Influence(), st.Backend())
	// Output:
	// influence 8 from the semiext backend
}

func ExampleApplyEdits() {
	g := exampleGraph()
	// ApplyEdits rebuilds from scratch and may reweight vertices; for
	// weight-preserving edge updates at serving time, prefer a
	// MutableStore, which updates incrementally.
	ng, err := influcomm.ApplyEdits(g, influcomm.Edit{
		AddEdges:   [][2]int32{{1, 4}},
		SetWeights: map[int32]float64{5: 99},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d edges, heaviest vertex is %d\n", ng.NumEdges(), ng.OrigID(0))
	// Output:
	// 8 edges, heaviest vertex is 5
}

// clusterGraph builds the disconnected fixture the cluster examples share:
// two separate triangles, so the graph partitions into two component-closed
// shards.
func clusterGraph() *influcomm.Graph {
	var b influcomm.Builder
	for id := int32(0); id < 6; id++ {
		b.AddVertex(id, float64(10-id))
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func ExamplePartitionGraph() {
	g := clusterGraph()
	shards, err := influcomm.PartitionGraph(g, 2) // deploy one icserver each
	if err != nil {
		panic(err)
	}
	for i, sg := range shards {
		res, err := influcomm.TopK(sg, 1, 2)
		if err != nil {
			panic(err)
		}
		fmt.Printf("shard %d: %d vertices, best influence %.0f\n",
			i, sg.NumVertices(), res.Communities[0].Influence())
	}
	// Output:
	// shard 0: 3 vertices, best influence 8
	// shard 1: 3 vertices, best influence 5
}

func ExampleNewClusterCoordinator() {
	// Each shard is an ordinary icserver over one partition; here they run
	// in-process on httptest listeners.
	parts, err := influcomm.PartitionGraph(clusterGraph(), 2)
	if err != nil {
		panic(err)
	}
	var shards []influcomm.ClusterShard
	for i, pg := range parts {
		s, err := server.New(pg)
		if err != nil {
			panic(err)
		}
		ts := httptest.NewServer(s)
		defer ts.Close()
		shards = append(shards, influcomm.ClusterShard{
			Name:     fmt.Sprintf("s%d", i),
			Replicas: []string{ts.URL},
		})
	}

	coord, err := influcomm.NewClusterCoordinator(shards,
		influcomm.WithClusterShardTimeout(10*time.Second))
	if err != nil {
		panic(err)
	}
	res, err := coord.TopK(context.Background(), "", 2, 2, influcomm.ClusterModeCore)
	if err != nil {
		panic(err)
	}
	// The merged answer is byte-identical to a single node serving the
	// whole graph.
	for _, c := range res.Communities {
		fmt.Printf("influence %.0f, %d members\n", c.Influence, c.Size)
	}
	fmt.Printf("partial=%v epochs=%d\n", res.Partial, len(res.Epochs))
	// Output:
	// influence 8, 3 members
	// influence 5, 3 members
	// partial=false epochs=2
}
