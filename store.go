package influcomm

import (
	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// Store is one graph behind a backend-agnostic query interface: TopK runs
// the same LocalSearch whether the backend is fully in-memory (NewMemoryStore)
// or semi-external (OpenEdgeFileStore) — on-disk edges sorted in decreasing
// edge-weight order with only O(n) per-vertex state resident, so queries can
// execute against a graph that never fully loads. Results, including access
// statistics, are identical across backends for the same graph. Stores are
// safe for concurrent use.
type Store = store.Store

// NewMemoryStore returns the in-memory Store over g: queries run on pooled
// engines, exactly like QueryPool.
func NewMemoryStore(g *Graph) (Store, error) {
	return store.OpenMem(g)
}

// OpenEdgeFileStore opens a semi-external edge file written by SaveEdgeFile
// as a Store. Only the per-vertex vectors are loaded; each query streams a
// prefix of the file sequentially, reading just as far as LocalSearch's
// geometric growth requires.
func OpenEdgeFileStore(path string) (Store, error) {
	return store.OpenEdgeFile(path)
}

// OpenStore opens path with an explicit backend choice: "memory" (or "")
// loads a graph file fully into RAM, "semiext" opens an edge file
// semi-externally.
func OpenStore(path, backend string) (Store, error) {
	return store.Open(path, backend)
}

// SaveEdgeFile writes g to path in the semi-external edge-file layout:
// per-vertex weights and up-degrees, then every up-adjacency list in
// decreasing edge-weight order, so any prefix of the file is a prefix
// subgraph G≥τ. The write is atomic (temporary file plus rename), like
// SaveGraph and SaveIndex.
func SaveEdgeFile(path string, g *Graph) error {
	return semiext.WriteEdgeFile(path, g)
}
