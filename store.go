package influcomm

import (
	"context"
	"fmt"

	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// Store is one graph behind a backend-agnostic query interface: TopK runs
// the same LocalSearch whether the backend is fully in-memory (NewMemoryStore)
// or semi-external (OpenEdgeFileStore) — on-disk edges sorted in decreasing
// edge-weight order with only O(n) per-vertex state resident, so queries can
// execute against a graph that never fully loads. Results, including access
// statistics, are identical across backends for the same graph. Stores are
// safe for concurrent use.
type Store = store.Store

// NewMemoryStore returns the in-memory Store over g: queries run on pooled
// engines, exactly like QueryPool.
func NewMemoryStore(g *Graph) (Store, error) {
	return store.OpenMem(g)
}

// StoreOption tunes how a semi-external store reads its edge file; the
// in-memory backend ignores these options.
type StoreOption = store.OpenOption

// WithPrefixCacheBytes budgets the semi-external decoded-prefix cache:
// LocalSearch's geometric growth means virtually every query touches the
// heavy prefix of the weight-ranked graph, so the store keeps one shared,
// immutable decoded copy of it (up to n extra resident bytes, grown on
// demand, read lock-free by all concurrent queries) and serves cache-
// fitting queries as fast as the in-memory backend. 0 — the default —
// disables the cache, preserving the strict O(n)-resident semi-external
// model.
func WithPrefixCacheBytes(n int64) StoreOption {
	return store.WithPrefixCacheBytes(n)
}

// WithEdgeFileMode selects the semi-external access path: "auto" (default)
// shares one zero-copy view of the edge file across all queries, degrading
// to positioned reads where mapping is unavailable; "mmap" is the same
// view but fails to open without a real mapping; "stream" forces
// per-query sequential reads.
func WithEdgeFileMode(mode string) StoreOption {
	return store.WithEdgeFileMode(mode)
}

// WithQueryWorkers bounds intra-query parallelism for the semi-external
// backend: a query whose work size leaves the zero-overhead sequential path
// evaluates its independent candidate prefixes on up to n goroutines, and
// bulk decodes of compressed (v2) edge files split across the same workers.
// Results — communities and access statistics alike — are byte-identical at
// any setting; 0 or 1 (the default) serves strictly sequentially.
func WithQueryWorkers(n int) StoreOption {
	return store.WithWorkers(n)
}

// OpenEdgeFileStore opens a semi-external edge file written by SaveEdgeFile
// as a Store. Only the per-vertex vectors are loaded; queries read just as
// far into the adjacency as LocalSearch's geometric growth requires,
// through a shared memory-mapped view by default (see WithEdgeFileMode)
// and optionally through a shared decoded-prefix cache
// (WithPrefixCacheBytes).
func OpenEdgeFileStore(path string, opts ...StoreOption) (Store, error) {
	return store.OpenEdgeFile(path, opts...)
}

// OpenStore opens path with an explicit backend choice: "memory" (or "")
// loads a graph file fully into RAM, "semiext" opens an edge file
// semi-externally, and "mutable" opens an edge file as a durable
// MutableStore accepting online edge updates.
func OpenStore(path, backend string, opts ...StoreOption) (Store, error) {
	return store.Open(path, backend, opts...)
}

// EdgeUpdate is one edge mutation of a MutableStore batch: the undirected
// edge {U, V} (original vertex IDs) is inserted, or deleted when Delete is
// set. Edge updates never change vertex weights, so the weight ranking —
// and every vertex's identity — is stable across updates.
type EdgeUpdate = store.EdgeUpdate

// UpdateStats reports what one update batch did: how many edges were
// inserted and deleted, how many operations were no-ops (inserting a
// present edge, deleting an absent one, or being superseded by a later
// operation on the same edge in the batch), and the snapshot epoch queries
// observe from now on.
type UpdateStats = store.UpdateStats

// UpdateEvent describes one published snapshot transition to a
// MutableStore.OnApply observer: the epoch of the snapshot the batch just
// published, and the delta cut — the smallest weight rank whose adjacency
// changed, below which every prefix subgraph is identical across the
// transition. The server's incremental index maintenance is built on this
// hook.
type UpdateEvent = store.UpdateEvent

// MutableStore is a Store whose graph accepts online edge updates while
// serving. Readers pin immutable copy-on-write snapshots with a single
// atomic load, so queries in flight during an update complete on the graph
// they started on and serving never pauses; writers serialize among
// themselves and publish whole snapshots via an incremental CSR delta
// (no sorting, no full rebuild). Results after any update sequence are
// exactly those of a fresh store built from the updated edge set.
type MutableStore = store.MutableStore

// OpenMutableStore opens the edge file at path (written by SaveEdgeFile)
// as a durable MutableStore: the graph loads fully into memory, a
// write-ahead update log at path + ".log" is replayed over it, every
// applied batch is fsynced to the log before it becomes visible, and a
// clean Close compacts the log back into the edge file atomically. A
// store that crashes without Close recovers by replaying the log on the
// next OpenMutableStore.
func OpenMutableStore(path string) (MutableStore, error) {
	return store.OpenMutable(path)
}

// NewMutableStore serves g as a MutableStore without durability: updates
// mutate the served snapshots but are not persisted anywhere.
func NewMutableStore(g *Graph) (MutableStore, error) {
	return store.OpenMutableGraph(g)
}

// Apply applies one batch of edge updates to st, which must be a
// MutableStore (any other backend returns an error): the facade-level
// entry point for callers holding a plain Store. See
// MutableStore.ApplyUpdates for the batch semantics.
func Apply(ctx context.Context, st Store, updates []EdgeUpdate) (UpdateStats, error) {
	ms := store.AsMutable(st)
	if ms == nil {
		return UpdateStats{}, fmt.Errorf("influcomm: the %s backend is immutable; open the store with OpenMutableStore to apply updates", st.Backend())
	}
	return ms.ApplyUpdates(ctx, updates)
}

// SaveEdgeFile writes g to path in the semi-external edge-file layout:
// per-vertex weights and up-degrees, then every up-adjacency list in
// decreasing edge-weight order, so any prefix of the file is a prefix
// subgraph G≥τ. The write is atomic (temporary file plus rename), like
// SaveGraph and SaveIndex.
func SaveEdgeFile(path string, g *Graph) error {
	return semiext.WriteEdgeFile(path, g)
}

// Edge-file layout versions for SaveEdgeFileFormat. V1 stores adjacency as
// fixed 4-byte ranks; V2 delta-gap + varint compresses each list and adds a
// block offset index, typically ~3x smaller on clustered graphs while
// keeping the same prefix-subgraph property and byte-identical query
// results.
const (
	EdgeFileV1 = semiext.FormatV1
	EdgeFileV2 = semiext.FormatV2
)

// SaveEdgeFileFormat is SaveEdgeFile with an explicit layout choice:
// EdgeFileV1 (flat, what SaveEdgeFile writes) or EdgeFileV2 (compressed).
// Both open through OpenEdgeFileStore and OpenMutableStore, which detect
// the layout from the file header.
func SaveEdgeFileFormat(path string, g *Graph, format int) error {
	return semiext.WriteEdgeFileFormat(path, g, format)
}
