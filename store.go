package influcomm

import (
	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// Store is one graph behind a backend-agnostic query interface: TopK runs
// the same LocalSearch whether the backend is fully in-memory (NewMemoryStore)
// or semi-external (OpenEdgeFileStore) — on-disk edges sorted in decreasing
// edge-weight order with only O(n) per-vertex state resident, so queries can
// execute against a graph that never fully loads. Results, including access
// statistics, are identical across backends for the same graph. Stores are
// safe for concurrent use.
type Store = store.Store

// NewMemoryStore returns the in-memory Store over g: queries run on pooled
// engines, exactly like QueryPool.
func NewMemoryStore(g *Graph) (Store, error) {
	return store.OpenMem(g)
}

// StoreOption tunes how a semi-external store reads its edge file; the
// in-memory backend ignores these options.
type StoreOption = store.OpenOption

// WithPrefixCacheBytes budgets the semi-external decoded-prefix cache:
// LocalSearch's geometric growth means virtually every query touches the
// heavy prefix of the weight-ranked graph, so the store keeps one shared,
// immutable decoded copy of it (up to n extra resident bytes, grown on
// demand, read lock-free by all concurrent queries) and serves cache-
// fitting queries as fast as the in-memory backend. 0 — the default —
// disables the cache, preserving the strict O(n)-resident semi-external
// model.
func WithPrefixCacheBytes(n int64) StoreOption {
	return store.WithPrefixCacheBytes(n)
}

// WithEdgeFileMode selects the semi-external access path: "auto" (default)
// shares one zero-copy view of the edge file across all queries, degrading
// to positioned reads where mapping is unavailable; "mmap" is the same
// view but fails to open without a real mapping; "stream" forces
// per-query sequential reads.
func WithEdgeFileMode(mode string) StoreOption {
	return store.WithEdgeFileMode(mode)
}

// OpenEdgeFileStore opens a semi-external edge file written by SaveEdgeFile
// as a Store. Only the per-vertex vectors are loaded; queries read just as
// far into the adjacency as LocalSearch's geometric growth requires,
// through a shared memory-mapped view by default (see WithEdgeFileMode)
// and optionally through a shared decoded-prefix cache
// (WithPrefixCacheBytes).
func OpenEdgeFileStore(path string, opts ...StoreOption) (Store, error) {
	return store.OpenEdgeFile(path, opts...)
}

// OpenStore opens path with an explicit backend choice: "memory" (or "")
// loads a graph file fully into RAM, "semiext" opens an edge file
// semi-externally.
func OpenStore(path, backend string, opts ...StoreOption) (Store, error) {
	return store.Open(path, backend, opts...)
}

// SaveEdgeFile writes g to path in the semi-external edge-file layout:
// per-vertex weights and up-degrees, then every up-adjacency list in
// decreasing edge-weight order, so any prefix of the file is a prefix
// subgraph G≥τ. The write is atomic (temporary file plus rename), like
// SaveGraph and SaveIndex.
func SaveEdgeFile(path string, g *Graph) error {
	return semiext.WriteEdgeFile(path, g)
}
