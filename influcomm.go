// Package influcomm is a Go implementation of "An Optimal and Progressive
// Approach to Online Search of Top-K Influential Communities" (Bi, Chang,
// Lin, Zhang; VLDB 2018). It answers top-k influential γ-community queries
// over vertex-weighted graphs with the instance-optimal LocalSearch
// algorithm, streams results progressively in decreasing influence order
// with LocalSearch-P, and extends both to non-containment semantics and the
// k-truss cohesiveness measure.
//
// # Quick start
//
//	g, err := influcomm.LoadGraph("graph.txt") // or build with a Builder
//	res, err := influcomm.TopK(g, 10, 5)       // top-10, γ = 5
//	for _, c := range res.Communities {
//	    fmt.Println(c.Influence(), c.Size())
//	}
//
// Vertices are identified by weight rank: ID 0 is the heaviest vertex. Use
// Graph.OrigID and Graph.Label to map results back to input identifiers.
package influcomm

import (
	"context"
	"fmt"
	"io"
	"os"

	"influcomm/internal/atomicio"
	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/pagerank"
	"influcomm/internal/queryweight"
	"influcomm/internal/store"
	"influcomm/internal/truss"
)

// Graph is an immutable vertex-weighted undirected graph, stored in
// decreasing weight order. Build one with a Builder or load one with
// LoadGraph / ReadGraph.
type Graph = graph.Graph

// Builder accumulates vertices, weights and edges and produces a Graph.
type Builder = graph.Builder

// Community is an influential γ-community: a node of the community
// containment forest with its influence value, keynode, and nested
// children.
type Community = core.Community

// TrussCommunity is an influential γ-truss community (§5.2 semantics).
type TrussCommunity = truss.Community

// Options tunes the LocalSearch algorithms; the zero value uses the
// paper's recommended settings (growth ratio δ = 2, (k+γ)-heuristic start).
type Options = core.Options

// Result bundles the communities of a query with access statistics.
type Result = core.Result

// Stats describes how much of the graph a query touched.
type Stats = core.Stats

// TopK returns the k influential γ-communities of g with the highest
// influence values, in decreasing influence order, using the
// instance-optimal LocalSearch algorithm (Algorithm 1 of the paper). Fewer
// than k communities are returned when the graph has fewer.
func TopK(g *Graph, k int, gamma int) (*Result, error) {
	return core.TopK(g, k, int32(gamma), core.Options{})
}

// TopKWithOptions is TopK with explicit algorithm options (growth ratio,
// initial prefix, non-containment semantics).
func TopKWithOptions(g *Graph, k int, gamma int, opts Options) (*Result, error) {
	return core.TopK(g, k, int32(gamma), opts)
}

// Stream progressively computes and reports the influential γ-communities
// of g in decreasing influence order (LocalSearch-P, Algorithm 4). yield is
// invoked for each community as soon as it is available; return false to
// stop. No k needs to be specified.
func Stream(g *Graph, gamma int, yield func(*Community) bool) (Stats, error) {
	return core.Stream(g, int32(gamma), core.Options{}, yield)
}

// StreamWithOptions is Stream with explicit algorithm options.
func StreamWithOptions(g *Graph, gamma int, opts Options, yield func(*Community) bool) (Stats, error) {
	return core.Stream(g, int32(gamma), opts, yield)
}

// TopKContext is TopK under a context: the search observes cancellation at
// round boundaries and every few thousand peeling steps inside a round, so
// a call with an already-expired deadline returns ctx.Err() promptly and a
// cancelled request stops the search mid-query.
func TopKContext(ctx context.Context, g *Graph, k int, gamma int) (*Result, error) {
	return core.TopKCtx(ctx, g, k, int32(gamma), core.Options{})
}

// TopKContextWithOptions is TopKContext with explicit algorithm options.
func TopKContextWithOptions(ctx context.Context, g *Graph, k int, gamma int, opts Options) (*Result, error) {
	return core.TopKCtx(ctx, g, k, int32(gamma), opts)
}

// StreamContext is Stream under a context: cancellation stops the
// progressive search between yields, returning ctx.Err().
func StreamContext(ctx context.Context, g *Graph, gamma int, yield func(*Community) bool) (Stats, error) {
	return core.StreamCtx(ctx, g, int32(gamma), core.Options{}, yield)
}

// StreamContextWithOptions is StreamContext with explicit algorithm options.
func StreamContextWithOptions(ctx context.Context, g *Graph, gamma int, opts Options, yield func(*Community) bool) (Stats, error) {
	return core.StreamCtx(ctx, g, int32(gamma), opts, yield)
}

// QueryPool amortizes per-query setup for repeated queries over one graph:
// search engines (four O(n) scratch slices each) and round buffers are
// pooled and reused, so steady-state queries allocate only their results.
// Use one QueryPool per graph for serving workloads; it is safe for
// concurrent use. A QueryPool is the in-memory Store backend under its
// original name — Store exposes the same pooled path for serving stacks
// that mix backends.
type QueryPool struct {
	g  *Graph
	st *store.Mem
}

// NewQueryPool returns a QueryPool answering queries over g.
func NewQueryPool(g *Graph) *QueryPool {
	st, _ := store.OpenMem(g) // nil/empty graphs report their error per query
	return &QueryPool{g: g, st: st}
}

// Graph returns the pool's graph.
func (q *QueryPool) Graph() *Graph { return q.g }

// Store returns the pool as the in-memory Store backend.
func (q *QueryPool) Store() Store { return q.st }

// TopK answers a top-k query with pooled scratch state; semantically
// identical to TopKContext.
func (q *QueryPool) TopK(ctx context.Context, k int, gamma int) (*Result, error) {
	return q.TopKWithOptions(ctx, k, gamma, Options{})
}

// TopKWithOptions is TopK with explicit algorithm options.
func (q *QueryPool) TopKWithOptions(ctx context.Context, k int, gamma int, opts Options) (*Result, error) {
	if q.st == nil {
		return core.TopKCtx(ctx, q.g, k, int32(gamma), opts) // reports the nil/empty-graph error
	}
	return q.st.TopK(ctx, k, int32(gamma), opts)
}

// Stream answers a progressive query with a pooled engine; semantically
// identical to StreamContext.
func (q *QueryPool) Stream(ctx context.Context, gamma int, yield func(*Community) bool) (Stats, error) {
	if q.st == nil {
		return core.StreamCtx(ctx, q.g, int32(gamma), core.Options{}, yield)
	}
	return q.st.Stream(ctx, int32(gamma), core.Options{}, yield)
}

// TopKNonContainment returns the top-k non-containment influential
// γ-communities (§5.1): communities with no nested sub-community. The
// result set is pairwise disjoint.
func TopKNonContainment(g *Graph, k int, gamma int) (*Result, error) {
	return core.TopK(g, k, int32(gamma), core.Options{NonContainment: true})
}

// TopKTruss returns the top-k influential γ-truss communities (§5.2):
// cohesiveness requires every edge to close at least γ−2 triangles.
func TopKTruss(g *Graph, k int, gamma int) ([]*TrussCommunity, error) {
	res, err := truss.LocalSearch(truss.NewIndex(g), k, int32(gamma))
	if err != nil {
		return nil, err
	}
	return res.Communities, nil
}

// StreamTruss progressively reports influential γ-truss communities in
// decreasing influence order, the §4 progressive technique applied to the
// truss measure; yield returning false stops the search.
func StreamTruss(g *Graph, gamma int, yield func(*TrussCommunity) bool) error {
	_, err := truss.Stream(truss.NewIndex(g), int32(gamma), yield)
	return err
}

// TopKTrussContext is TopKTruss under a context: cancellation is observed
// at round boundaries and inside the truss peeling loops.
func TopKTrussContext(ctx context.Context, g *Graph, k int, gamma int) ([]*TrussCommunity, error) {
	res, err := truss.LocalSearchCtx(ctx, truss.NewIndex(g), k, int32(gamma))
	if err != nil {
		return nil, err
	}
	return res.Communities, nil
}

// StreamTrussContext is StreamTruss under a context.
func StreamTrussContext(ctx context.Context, g *Graph, gamma int, yield func(*TrussCommunity) bool) error {
	_, err := truss.StreamCtx(ctx, truss.NewIndex(g), int32(gamma), yield)
	return err
}

// PageRankWeights returns a copy of g whose vertex weights are PageRank
// scores (damping 0.85), the weighting the paper's experiments use.
func PageRankWeights(g *Graph) (*Graph, error) {
	return pagerank.Reweight(g, pagerank.Options{})
}

// TopKNearQuery answers a query-centric top-k search (the extension of the
// paper's footnote 1): vertex weights are computed online as the
// reciprocal shortest distance to the seed vertices, so the reported
// communities are the most cohesive groups closest to the seeds. Seeds are
// rank IDs of g; the returned graph's OrigID maps community members back
// to g's original identifiers.
func TopKNearQuery(g *Graph, seeds []int32, k int, gamma int) (*Graph, *Result, error) {
	rw, err := queryweight.Reweight(g, seeds)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.TopK(rw, k, int32(gamma), core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return rw, res, nil
}

// ReadGraph parses a graph from r in the text format of WriteGraph
// ("v id weight" and "e u v" lines; bare "u v" edge lines are accepted with
// unit weights).
func ReadGraph(r io.Reader) (*Graph, error) {
	return graph.ReadText(r)
}

// WriteGraph serializes g to w in the text format accepted by ReadGraph.
func WriteGraph(w io.Writer, g *Graph) error {
	return graph.WriteText(w, g)
}

// LoadGraph reads a graph from the file at path; files ending in ".bin"
// use the compact binary format, anything else the text format.
func LoadGraph(path string) (*Graph, error) {
	g, err := graph.LoadFile(path)
	if err != nil {
		return nil, fmt.Errorf("influcomm: loading %s: %w", path, err)
	}
	return g, nil
}

// SaveGraph writes g to the file at path, choosing the format by extension
// as in LoadGraph. Like SaveIndex, the write is atomic (temporary file plus
// rename), so an interrupted save never truncates a graph file in place.
func SaveGraph(path string, g *Graph) error {
	err := atomicio.WriteFile(path, func(f *os.File) error {
		if isBinaryPath(path) {
			return graph.WriteBinary(f, g)
		}
		return graph.WriteText(f, g)
	})
	if err != nil {
		return fmt.Errorf("influcomm: saving graph: %w", err)
	}
	return nil
}

func isBinaryPath(path string) bool { return graph.IsBinaryPath(path) }
