package influcomm

import (
	"fmt"
	"sync"

	"influcomm/internal/core"
)

// Query is one top-k influential community query of a batch.
type Query struct {
	K     int
	Gamma int
	// Options tunes the individual query; the zero value uses the paper's
	// defaults.
	Options Options
}

// QueryResult pairs a batch query with its outcome.
type QueryResult struct {
	Query  Query
	Result *Result
	Err    error
}

// TopKBatch answers many queries over the same graph concurrently, using up
// to parallelism goroutines (capped at the number of queries; values < 1
// mean 1). The graph is immutable and safely shared; every query gets its
// own search engine. Results are returned in query order.
//
// The paper's algorithms are single-threaded per query — batching is how a
// serving system exploits multiple cores, since CountIC's sequential
// peeling is inherently order-dependent.
func TopKBatch(g *Graph, queries []Query, parallelism int) []QueryResult {
	out := make([]QueryResult, len(queries))
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				q := queries[i]
				res, err := core.TopK(g, q.K, int32(q.Gamma), q.Options)
				if err != nil {
					err = fmt.Errorf("influcomm: query %d (k=%d, γ=%d): %w", i, q.K, q.Gamma, err)
				}
				out[i] = QueryResult{Query: q, Result: res, Err: err}
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
