package influcomm

import (
	"context"
	"fmt"
	"sync"
)

// Query is one top-k influential community query of a batch.
type Query struct {
	K     int
	Gamma int
	// Options tunes the individual query; the zero value uses the paper's
	// defaults.
	Options Options
}

// QueryResult pairs a batch query with its outcome.
type QueryResult struct {
	Query  Query
	Result *Result
	Err    error
}

// BatchOptions tunes TopKBatchContext.
type BatchOptions struct {
	// Parallelism bounds the number of concurrent worker goroutines
	// (capped at the number of queries; values < 1 mean 1).
	Parallelism int

	// FailFast cancels the remaining queries as soon as one fails
	// (errgroup semantics): unstarted queries report the first failure —
	// the cancellation cause — in their Err, and it is also returned as
	// the batch error.
	FailFast bool

	// Pool, when non-nil, supplies the search engines; pass the pool a
	// serving system already holds so batch and interactive traffic share
	// warm scratch state. A fresh pool is created otherwise.
	Pool *QueryPool
}

// TopKBatch answers many queries over the same graph concurrently, using up
// to parallelism goroutines (capped at the number of queries; values < 1
// mean 1). The graph is immutable and safely shared; engines are drawn from
// a pool so the batch allocates O(parallelism), not O(queries), scratch
// state. Results are returned in query order; per-query failures are
// recorded in QueryResult.Err without affecting the other queries.
//
// The paper's algorithms are single-threaded per query — batching is how a
// serving system exploits multiple cores, since CountIC's sequential
// peeling is inherently order-dependent.
func TopKBatch(g *Graph, queries []Query, parallelism int) []QueryResult {
	out, _ := TopKBatchContext(context.Background(), g, queries, BatchOptions{Parallelism: parallelism})
	return out
}

// TopKBatchContext is TopKBatch under a context and explicit options. The
// context cancels the whole batch: in-flight queries stop mid-search and
// unstarted ones are skipped, all reporting ctx.Err(). The returned error
// is the batch-level failure — ctx.Err() on cancellation, or the first
// query error when opts.FailFast is set — and nil otherwise, even when
// individual queries failed.
func TopKBatchContext(ctx context.Context, g *Graph, queries []Query, opts BatchOptions) ([]QueryResult, error) {
	pool := opts.Pool
	if pool == nil {
		pool = NewQueryPool(g)
	}
	return runBatch(ctx, pool.TopKWithOptions, queries, opts)
}

// TopKBatchStoreContext is TopKBatchContext routed through a Store: the
// same bounded-worker fan-out, fail-fast wiring, and per-query error
// reporting, but each query executes against the store's backend — pooled
// in-memory engines or semi-external edge-file streams. opts.Pool is
// ignored; the store supplies the execution path.
func TopKBatchStoreContext(ctx context.Context, st Store, queries []Query, opts BatchOptions) ([]QueryResult, error) {
	return runBatch(ctx, func(ctx context.Context, k, gamma int, o Options) (*Result, error) {
		return st.TopK(ctx, k, int32(gamma), o)
	}, queries, opts)
}

// runBatch is the shared batch driver: exec answers one query under the
// batch's derived context.
func runBatch(ctx context.Context, exec func(context.Context, int, int, Options) (*Result, error), queries []Query, opts BatchOptions) ([]QueryResult, error) {
	out := make([]QueryResult, len(queries))
	if len(queries) == 0 {
		return out, ctx.Err()
	}
	parallelism := opts.Parallelism
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}

	// Errgroup-style wiring without the external dependency: a derived
	// context that the first failure cancels with itself as the cause, plus
	// a once-guarded slot for that failure.
	bctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var (
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel(err)
		})
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				q := queries[i]
				if bctx.Err() != nil {
					// Cause is the first failure under FailFast, or
					// ctx.Err() when the caller's context fired.
					out[i] = QueryResult{Query: q, Err: context.Cause(bctx)}
					continue
				}
				res, err := exec(bctx, q.K, q.Gamma, q.Options)
				if err != nil {
					err = fmt.Errorf("influcomm: query %d (k=%d, γ=%d): %w", i, q.K, q.Gamma, err)
					if opts.FailFast {
						fail(err)
					}
				}
				out[i] = QueryResult{Query: q, Result: res, Err: err}
			}
		}()
	}
	for i := range queries {
		work <- i
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, firstErr
}
