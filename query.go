package influcomm

import (
	"context"
	"errors"
	"strconv"
	"strings"

	"influcomm/internal/cluster"
	"influcomm/internal/core"
	"influcomm/internal/query"
	"influcomm/internal/queryweight"
	"influcomm/internal/truss"
)

// This file is the embedded face of the query DSL (internal/query): parse
// a batch of composable statements and run it against an in-memory graph,
// with the same within-batch work sharing the server applies across
// concurrent HTTP batches — identical (k, γ, semantics) plan nodes are
// computed once however many statements expand to them.

// ParsedQuery is a parsed DSL batch: one or more statements, each a
// source (topk or near) behind an optional filter pipeline. Its String
// method prints the canonical form, a fixpoint of ParseQuery. The grammar
// is documented in docs/ARCHITECTURE.md.
type ParsedQuery = query.Query

// ParseQuery parses a DSL batch such as
//
//	"topk(k=5, gamma=2..4) | influence(>=10) | limit(3); near(seeds=[7], k=3)"
//
// without executing it. Use RunQuery to parse and execute in one step, or
// POST the source text to a server's /v1/query.
func ParseQuery(src string) (*ParsedQuery, error) {
	return query.Parse(src)
}

// QueryNode is one executed plan node of a RunQuery statement: a single
// (k, γ, semantics) shape, with the communities that survived the
// statement's filter pipeline.
type QueryNode struct {
	// K and Gamma are the node's fixed shape.
	K     int
	Gamma int
	// Mode is the node's semantics: "core", "noncontainment", or "truss".
	Mode string
	// Shared marks nodes answered by a computation shared with an earlier
	// identical node of the batch instead of a fresh search.
	Shared bool
	// Communities is the node's answer, decreasing influence, after the
	// statement's filters; elements are byte-identical (in JSON form) to
	// the server's /v1/topk communities for the same shape.
	Communities []ClusterCommunity
}

// QueryStatement is one RunQuery statement's results: the statement in
// canonical form and its plan nodes in (γ, semantics) expansion order.
type QueryStatement struct {
	Statement string
	Nodes     []QueryNode
}

// RunQuery parses and executes a DSL batch against g. Every statement is
// planned into fixed-shape nodes (one per γ × semantics combination);
// identical nodes across the batch are computed once, and seed-scoped
// near statements additionally share one distance reweighting per seed
// set. Results come back per statement, in input order.
func RunQuery(ctx context.Context, g *Graph, src string) ([]QueryStatement, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	nodes, err := query.PlanQuery(q, nil)
	if err != nil {
		return nil, err
	}

	out := make([]QueryStatement, len(q.Statements))
	for i, st := range q.Statements {
		out[i].Statement = st.String()
	}
	searched := make(map[string][]ClusterCommunity) // node key -> rendered answer
	reweighted := make(map[string]*Graph)           // seed-set key -> reweighted graph
	for _, n := range nodes {
		comms, shared := searched[n.Key], false
		if comms != nil {
			shared = true
		} else {
			comms, err = runQueryNode(ctx, g, n, reweighted)
			if err != nil {
				return nil, err
			}
			if comms == nil {
				comms = []ClusterCommunity{} // cache a miss-proof non-nil empty answer
			}
			searched[n.Key] = comms
		}
		out[n.Stmt].Nodes = append(out[n.Stmt].Nodes, QueryNode{
			K:           n.K,
			Gamma:       int(n.Gamma),
			Mode:        n.Mode,
			Shared:      shared,
			Communities: cluster.ApplyDSLFilters(q.Statements[n.Stmt].Filters, comms),
		})
	}
	return out, nil
}

// runQueryNode executes one plan node against g, reusing (and filling)
// the per-batch reweighting cache for near nodes.
func runQueryNode(ctx context.Context, g *Graph, n query.Node, reweighted map[string]*Graph) ([]ClusterCommunity, error) {
	target := g
	if len(n.Seeds) > 0 {
		key := seedsKey(n.Seeds)
		rw := reweighted[key]
		if rw == nil {
			var err error
			rw, err = queryweight.Reweight(g, n.Seeds)
			if err != nil {
				return nil, err
			}
			reweighted[key] = rw
		}
		target = rw
	}

	var comms []ClusterCommunity
	if n.Mode == query.SemTruss {
		if n.Gamma < 2 {
			return nil, errors.New("truss queries need gamma >= 2")
		}
		res, err := truss.LocalSearchCtx(ctx, truss.NewIndex(target), n.K, n.Gamma)
		if err != nil {
			return nil, err
		}
		for _, c := range res.Communities {
			comms = append(comms, cluster.Render(target, c.Influence(), c.Keynode(), c.Vertices()))
		}
		return comms, nil
	}
	res, err := core.TopKCtx(ctx, target, n.K, n.Gamma, core.Options{
		NonContainment: n.Mode == query.SemNonContainment,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range res.Communities {
		comms = append(comms, cluster.Render(target, c.Influence(), c.Keynode(), c.Vertices()))
	}
	return comms, nil
}

// seedsKey canonicalizes a (sorted, deduplicated) seed set into a cache
// key for the reweighting it determines.
func seedsKey(seeds []int32) string {
	var b strings.Builder
	for i, s := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}
