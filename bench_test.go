// Benchmarks regenerating a representative point of every table and figure
// of the paper's evaluation (§6). Each benchmark measures one query on the
// workload stand-in datasets; cmd/icbench runs the full parameter sweeps
// and prints the complete series.
//
// Naming: BenchmarkFigN_<dataset>_<algorithm>[_<params>]. Figure 17 is a
// measurement of visited-graph size rather than time; its benchmark reports
// the fraction via b.ReportMetric.
package influcomm

import (
	"context"
	"testing"
	"time"

	"influcomm/internal/baseline"
	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/kcore"
	"influcomm/internal/semiext"
	"influcomm/internal/truss"
	"influcomm/internal/workload"
)

func loadBench(b *testing.B, name string) *graph.Graph {
	b.Helper()
	d, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := d.Load()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func edgeFileBench(b *testing.B, name string) string {
	b.Helper()
	d, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	path, err := d.EdgeFile()
	if err != nil {
		b.Fatal(err)
	}
	return path
}

// --- Table 1: graph statistics ---------------------------------------------

func BenchmarkTable1Stats(b *testing.B) {
	g := loadBench(b, "email")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Statistics()
		_ = kcore.MaxCore(g)
	}
}

// --- Figure 8: against global search, γ=10, k=10 ----------------------------

func BenchmarkFig8_Email_OnlineAll(b *testing.B) {
	g := loadBench(b, "email")
	gamma := workload.ClampGamma(10, kcore.MaxCore(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.OnlineAll(g, 10, gamma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Email_Forward(b *testing.B) {
	g := loadBench(b, "email")
	gamma := workload.ClampGamma(10, kcore.MaxCore(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Forward(g, 10, gamma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Email_LocalSearchP(b *testing.B) {
	g := loadBench(b, "email")
	gamma := workload.ClampGamma(10, kcore.MaxCore(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, gamma, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Twitter_Forward(b *testing.B) {
	g := loadBench(b, "twitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Forward(g, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Twitter_LocalSearchP(b *testing.B) {
	g := loadBench(b, "twitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9: k=10, vary γ --------------------------------------------------

func BenchmarkFig9_Wiki_LocalSearchP_Gamma5(b *testing.B)  { fig9(b, 5) }
func BenchmarkFig9_Wiki_LocalSearchP_Gamma12(b *testing.B) { fig9(b, 12) }

func fig9(b *testing.B, gamma int32) {
	g := loadBench(b, "wiki")
	gamma = workload.ClampGamma(gamma, kcore.MaxCore(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, gamma, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: large k and γ ------------------------------------------------

func BenchmarkFig10_Arabic_Forward_K1000(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Forward(g, 1000, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Arabic_LocalSearchP_K1000(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 1000, 16, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11: against Backward ---------------------------------------------

func BenchmarkFig11_UK_Backward_K100(b *testing.B) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.Backward(g, 100, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_UK_LocalSearchP_K100(b *testing.B) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 100, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: counting ablation (LocalSearch-OA) ---------------------------

func BenchmarkFig12_Wiki_LocalSearchOA(b *testing.B) {
	g := loadBench(b, "wiki")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.LocalSearchOA(g, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12_Wiki_LocalSearchP(b *testing.B) {
	g := loadBench(b, "wiki")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 13: growth ratio δ -----------------------------------------------

func BenchmarkFig13_UK_Delta1_5(b *testing.B) { fig13(b, 1.5) }
func BenchmarkFig13_UK_Delta2(b *testing.B)   { fig13(b, 2) }
func BenchmarkFig13_UK_Delta16(b *testing.B)  { fig13(b, 16) }
func BenchmarkFig13_UK_Delta128(b *testing.B) { fig13(b, 128) }

func fig13(b *testing.B, delta float64) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, 10, core.Options{Delta: delta}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 14: progressive latency to the first community -------------------

func BenchmarkFig14_Arabic_FirstCommunity_LocalSearchP(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Stream(g, 10, core.Options{}, func(*core.Community) bool { return false })
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14_Arabic_Top128_LocalSearch(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 128, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 15: progressive vs non-progressive total time --------------------

func BenchmarkFig15_Arabic_LocalSearch_K100(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 100, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_Arabic_LocalSearchP_K100(b *testing.B) {
	g := loadBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 100, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 16: semi-external total time -------------------------------------

// The representative semi-external point uses livejournal: OnlineAll-SE on
// the arabic/twitter stand-ins takes minutes per run (that multi-minute
// behavior is itself the figure's message; cmd/icbench measures it there).
func BenchmarkFig16_Livejournal_OnlineAllSE(b *testing.B) {
	path := edgeFileBench(b, "livejournal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := semiext.OnlineAllSE(path, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16_Livejournal_LocalSearchSE(b *testing.B) {
	path := edgeFileBench(b, "livejournal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := semiext.LocalSearchSE(path, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16_Arabic_LocalSearchSE(b *testing.B) {
	path := edgeFileBench(b, "arabic")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := semiext.LocalSearchSE(path, 10, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 17: semi-external visited graph size -----------------------------

func BenchmarkFig17_Arabic_VisitedFraction(b *testing.B) {
	path := edgeFileBench(b, "arabic")
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := semiext.LocalSearchSE(path, 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		frac = st.VisitedFraction
	}
	b.ReportMetric(frac, "visited-fraction")
	b.ReportMetric(1.0, "onlineall-fraction")
}

// --- Figure 18: non-containment queries --------------------------------------

// Non-containment structure needs many disjoint dense regions, so these
// benchmarks use the planted-archipelago stand-in the harness' Figure 18
// uses (see EXPERIMENTS.md).
func archipelagoBench(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.PlantedArchipelago(500, 50, 0.4, 1807)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkFig18_Archipelago_ForwardNC(b *testing.B) {
	g := archipelagoBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.ForwardNonContainment(g, 10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18_Archipelago_LocalSearchP_NC(b *testing.B) {
	g := archipelagoBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopKProgressive(g, 10, 10, core.Options{NonContainment: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 19: γ-truss community search -------------------------------------

func BenchmarkFig19_Wiki_GlobalSearchTruss(b *testing.B) {
	g := loadBench(b, "wiki")
	ix := truss.NewIndex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := truss.GlobalSearch(ix, 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19_Wiki_LocalSearchTruss(b *testing.B) {
	g := loadBench(b, "wiki")
	ix := truss.NewIndex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := truss.LocalSearch(ix, 10, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationArithmeticGrowth(b *testing.B) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 100, 10, core.Options{ArithmeticGrowth: 4096}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGeometricGrowth(b *testing.B) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 100, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInitialTau_Heuristic(b *testing.B) {
	g := loadBench(b, "uk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 10, 10, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInitialTau_WholeGraph(b *testing.B) {
	g := loadBench(b, "uk")
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TopK(g, 10, 10, core.Options{InitialPrefix: n}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- IndexAll ablation (the index-based algorithm category of [26]) -----------

func BenchmarkIndexAll_Livejournal_Build(b *testing.B) {
	g := loadBench(b, "livejournal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.BuildContext(context.Background(), g, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexAll_Livejournal_BuildParallel(b *testing.B) {
	g := loadBench(b, "livejournal")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := index.Build(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexAll_Livejournal_Query(b *testing.B) {
	g := loadBench(b, "livejournal")
	ix, err := index.Build(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.TopK(10, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ------------------------------------------------

func BenchmarkCountIC_Twitter(b *testing.B) {
	g := loadBench(b, "twitter")
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.CountIC(g, n, 10)
	}
}

func BenchmarkGammaCorePeel_Twitter(b *testing.B) {
	g := loadBench(b, "twitter")
	pl := kcore.NewPeeler(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.PrefixCore(g, g.NumVertices(), 10)
	}
}

func BenchmarkPrefixExtraction_Twitter(b *testing.B) {
	g := loadBench(b, "twitter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := g.PrefixForSize(g.Size() / 2)
		_ = g.PrefixSize(p)
	}
}

// BenchmarkPooledTopK compares the pooled query path (engines and CVS
// buffers reused via QueryPool) against the seed per-query path that builds
// a fresh engine — four O(n) slices — for every call. The pooled variant's
// allocs/op must stay far below the per-query variant: in steady state it
// allocates only the returned Result.
func BenchmarkPooledTopK(b *testing.B) {
	g := loadBench(b, "email")
	gamma := workload.ClampGamma(10, kcore.MaxCore(g))
	b.Run("PerQuery", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TopK(g, 10, gamma, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Pooled", func(b *testing.B) {
		pool := NewQueryPool(g)
		ctx := context.Background()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pool.TopK(ctx, 10, int(gamma)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamLatency measures time-to-first-community, the headline
// metric of the progressive approach.
func BenchmarkStreamLatency_Twitter(b *testing.B) {
	g := loadBench(b, "twitter")
	b.ResetTimer()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		_, err := core.Stream(g, 10, core.Options{}, func(*core.Community) bool { return false })
		if err != nil {
			b.Fatal(err)
		}
		total += time.Since(start)
	}
	b.ReportMetric(float64(total.Microseconds())/float64(b.N), "µs/first-community")
}
