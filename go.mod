module influcomm

go 1.22
