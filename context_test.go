package influcomm

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTopKContextExpiredDeadline(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := TopKContext(ctx, g, 2, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKContext err = %v, want DeadlineExceeded", err)
	}
	if _, err := StreamContext(ctx, g, 3, func(*Community) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StreamContext err = %v, want DeadlineExceeded", err)
	}
	if _, err := TopKTrussContext(ctx, g, 2, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("TopKTrussContext err = %v, want DeadlineExceeded", err)
	}
	if err := StreamTrussContext(ctx, g, 4, func(*TrussCommunity) bool { return true }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("StreamTrussContext err = %v, want DeadlineExceeded", err)
	}
}

func TestTopKContextMatchesTopK(t *testing.T) {
	g := figure1(t)
	want, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopKContext(context.Background(), g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Communities) != len(want.Communities) {
		t.Fatalf("got %d communities, want %d", len(got.Communities), len(want.Communities))
	}
	for i := range want.Communities {
		if got.Communities[i].Influence() != want.Communities[i].Influence() {
			t.Errorf("community %d: influence %v, want %v",
				i, got.Communities[i].Influence(), want.Communities[i].Influence())
		}
	}
}

func TestQueryPool(t *testing.T) {
	g := figure1(t)
	pool := NewQueryPool(g)
	if pool.Graph() != g {
		t.Fatal("pool graph mismatch")
	}
	for i := 0; i < 10; i++ {
		res, err := pool.TopK(context.Background(), 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Communities) != 2 || res.Communities[0].Influence() != 13 {
			t.Fatalf("iteration %d: unexpected result %+v", i, res.Communities)
		}
	}
	var influences []float64
	if _, err := pool.Stream(context.Background(), 3, func(c *Community) bool {
		influences = append(influences, c.Influence())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(influences) != 2 || influences[0] != 13 || influences[1] != 10 {
		t.Fatalf("pooled stream = %v, want [13 10]", influences)
	}
}

func TestTopKBatchContextCanceled(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []Query{{K: 1, Gamma: 3}, {K: 2, Gamma: 3}}
	out, err := TopKBatchContext(ctx, g, queries, BatchOptions{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want Canceled", err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d results, want 2", len(out))
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("query %d err = %v, want Canceled", i, r.Err)
		}
	}
}

func TestTopKBatchContextFailFast(t *testing.T) {
	g := figure1(t)
	// One poisoned query among many; fail-fast must surface it as the
	// batch error while normal mode keeps it per-query.
	queries := make([]Query, 32)
	for i := range queries {
		queries[i] = Query{K: i%3 + 1, Gamma: 3}
	}
	queries[0] = Query{K: 0, Gamma: 3}

	out, err := TopKBatchContext(context.Background(), g, queries, BatchOptions{Parallelism: 4, FailFast: true})
	if err == nil {
		t.Fatal("fail-fast batch with an invalid query: want error")
	}
	if out[0].Err == nil {
		t.Error("poisoned query should carry its error")
	}

	// With one worker the failure order is deterministic: every query
	// after the poisoned one is skipped and must report the first failure
	// as its cancellation cause, not a bare context.Canceled.
	out, err = TopKBatchContext(context.Background(), g, queries, BatchOptions{Parallelism: 1, FailFast: true})
	if err == nil || out[0].Err == nil {
		t.Fatal("fail-fast serial batch: want error")
	}
	for i := 1; i < len(out); i++ {
		if !errors.Is(out[i].Err, out[0].Err) {
			t.Fatalf("query %d err = %v, want the first failure as cause", i, out[i].Err)
		}
	}

	out, err = TopKBatchContext(context.Background(), g, queries, BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatalf("non-fail-fast batch error: %v", err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Err != nil {
			t.Errorf("query %d: unexpected error %v", i, out[i].Err)
		}
	}
}

func TestTopKBatchSharedPool(t *testing.T) {
	g := figure1(t)
	pool := NewQueryPool(g)
	queries := make([]Query, 16)
	for i := range queries {
		queries[i] = Query{K: 2, Gamma: 3}
	}
	out, err := TopKBatchContext(context.Background(), g, queries, BatchOptions{Parallelism: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil || len(r.Result.Communities) != 2 {
			t.Fatalf("query %d: %+v", i, r)
		}
	}
}

func TestIsBinaryPathCaseInsensitive(t *testing.T) {
	for _, path := range []string{"g.bin", "g.BIN", "g.Bin", "G.bIn"} {
		if !isBinaryPath(path) {
			t.Errorf("isBinaryPath(%q) = false, want true", path)
		}
	}
	for _, path := range []string{"g.txt", "bin", "g.binx", ""} {
		if isBinaryPath(path) {
			t.Errorf("isBinaryPath(%q) = true, want false", path)
		}
	}
}
