package influcomm

import (
	"bytes"
	"path/filepath"
	"testing"
)

// figure1 builds the paper's Figure 1 graph through the public API.
func figure1(t testing.TB) *Graph {
	t.Helper()
	var b Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicTopK(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != 2 {
		t.Fatalf("got %d communities, want 2", len(res.Communities))
	}
	if res.Communities[0].Influence() != 13 || res.Communities[1].Influence() != 10 {
		t.Errorf("influences %v, %v; want 13, 10",
			res.Communities[0].Influence(), res.Communities[1].Influence())
	}
}

func TestPublicStream(t *testing.T) {
	g := figure1(t)
	var got []float64
	_, err := Stream(g, 3, func(c *Community) bool {
		got = append(got, c.Influence())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 13 || got[1] != 10 {
		t.Errorf("streamed influences %v, want [13 10]", got)
	}
}

func TestPublicNonContainment(t *testing.T) {
	g := figure1(t)
	res, err := TopKNonContainment(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both Figure 1 communities have no nested sub-community.
	if len(res.Communities) != 2 {
		t.Fatalf("got %d NC communities, want 2", len(res.Communities))
	}
}

func TestPublicTruss(t *testing.T) {
	g := figure1(t)
	// γ=4 truss: K4s where each edge is in >= 2 triangles.
	comms, err := TopKTruss(g, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) == 0 {
		t.Fatal("expected at least one 4-truss community")
	}
	for _, c := range comms {
		if c.Size() < 4 {
			t.Errorf("4-truss community of size %d is impossible", c.Size())
		}
	}
}

func TestPublicStreamTruss(t *testing.T) {
	g := figure1(t)
	var got []float64
	err := StreamTruss(g, 4, func(c *TrussCommunity) bool {
		got = append(got, c.Influence())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no 4-truss communities streamed")
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Errorf("truss stream not in decreasing influence order: %v", got)
		}
	}
	if err := StreamTruss(g, 1, func(*TrussCommunity) bool { return true }); err == nil {
		t.Error("gamma=1 truss stream: want error")
	}
}

func TestPublicPageRank(t *testing.T) {
	g := figure1(t)
	rw, err := PageRankWeights(g)
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumVertices() != g.NumVertices() || rw.NumEdges() != g.NumEdges() {
		t.Error("PageRankWeights changed the graph shape")
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g := figure1(t)
	dir := t.TempDir()

	for _, name := range []string{"g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveGraph(path, g); err != nil {
			t.Fatalf("SaveGraph(%s): %v", name, err)
		}
		g2, err := LoadGraph(path)
		if err != nil {
			t.Fatalf("LoadGraph(%s): %v", name, err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Errorf("%s round trip changed shape", name)
		}
		res, err := TopK(g2, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Communities) != 2 || res.Communities[0].Influence() != 13 {
			t.Errorf("%s round trip changed query results", name)
		}
	}
}

func TestReadWriteGraphStream(t *testing.T) {
	g := figure1(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("stream round trip lost edges")
	}
}

func TestLoadGraphMissing(t *testing.T) {
	if _, err := LoadGraph(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file: want error")
	}
}
